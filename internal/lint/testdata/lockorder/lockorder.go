// Package fixlockorder is a purity-lint fixture for the lockorder rule:
// the module-wide lock-acquisition graph must be acyclic over blocking
// edges. Two functions that each acquire the same pair of mutexes in
// opposite orders deadlock under the right interleaving even though each
// is locally well-formed — only the whole-module graph sees it. A cycle
// of pure read-shared (RLock→RLock) edges is harmless and must stay
// silent, and edges must be found through helper calls, not just direct
// Lock sites. Two instances of one class held together are a hazard no
// static order can rank.
package fixlockorder

import "sync"

type A struct{ mu sync.Mutex }

type B struct{ mu sync.Mutex }

// forward acquires A.mu then B.mu — one half of the cycle. The report is
// anchored here: the witness of the first edge on the cycle from the
// alphabetically smallest class.
func forward(a *A, b *B) {
	a.mu.Lock()
	b.mu.Lock() // want "lock-order cycle (potential deadlock)"
	b.mu.Unlock()
	a.mu.Unlock()
}

// reverse acquires B.mu then A.mu — the other half. Locally fine; the
// deadlock only exists because forward does the opposite.
func reverse(a *A, b *B) {
	b.mu.Lock()
	a.mu.Lock()
	a.mu.Unlock()
	b.mu.Unlock()
}

type C struct{ mu sync.RWMutex }

type D struct{ mu sync.RWMutex }

// readForward and readReverse form a cycle of pure read-shared edges:
// RLock admits any number of readers, so opposite orders cannot deadlock
// and the rule must stay silent.
func readForward(c *C, d *D) {
	c.mu.RLock()
	d.mu.RLock()
	d.mu.RUnlock()
	c.mu.RUnlock()
}

func readReverse(c *C, d *D) {
	d.mu.RLock()
	c.mu.RLock()
	c.mu.RUnlock()
	d.mu.RUnlock()
}

type E struct{ mu sync.Mutex }

type F struct{ mu sync.Mutex }

// lockF hides the F.mu acquisition behind a call: the edge must come from
// the acquisition summary, not from a Lock literally in the caller.
func lockF(f *F) {
	f.mu.Lock()
	f.mu.Unlock()
}

// eThenF acquires E.mu and then calls into lockF while holding it — the
// interprocedural half of the E/F cycle, witnessed at the call site.
func eThenF(e *E, f *F) {
	e.mu.Lock()
	lockF(f) // want "lock-order cycle (potential deadlock)"
	e.mu.Unlock()
}

func fThenE(e *E, f *F) {
	f.mu.Lock()
	e.mu.Lock()
	e.mu.Unlock()
	f.mu.Unlock()
}

// G is a linked node: locking a node and then its neighbour holds two
// instances of the same class, which no static class order can rank.
type G struct {
	mu   sync.Mutex
	next *G
}

func chain(g *G) {
	g.mu.Lock()
	g.next.mu.Lock() // want "instances of one class cannot be ordered statically"
	g.next.mu.Unlock()
	g.mu.Unlock()
}
