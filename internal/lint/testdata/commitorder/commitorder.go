// Package fixcommitorder is a purity-lint fixture for the commitorder
// rule: inside a body that commits (appends to NVRAM, directly or through
// a callee), every durable-state apply — a pyramid fact insert or a
// persistedSeq advance — must be dominated by an append on EVERY path
// reaching it. The fixture covers the clean shape, the plainly reversed
// shape, the some-path shape (an append under only one branch dominates
// nothing after the join), the apply hidden behind a helper call, and the
// apply-only body that must stay silent because the obligation belongs to
// its callers.
package fixcommitorder

import (
	"purity/internal/nvram"
	"purity/internal/pyramid"
	"purity/internal/sim"
	"purity/internal/tuple"
)

type engine struct {
	dev          *nvram.Device
	pyr          *pyramid.Pyramid
	persistedSeq uint64
}

// commitGood is the invariant's canonical shape: append, then apply.
func commitGood(e *engine, at sim.Time, payload []byte, facts []tuple.Fact) error {
	if _, _, err := e.dev.Append(at, payload); err != nil {
		return err
	}
	return e.pyr.Insert(facts)
}

// commitBad applies first and appends after: a crash between the two
// leaves state the log cannot replay.
func commitBad(e *engine, at sim.Time, payload []byte, facts []tuple.Fact) error {
	if err := e.pyr.Insert(facts); err != nil { // want "not dominated by an NVRAM append on every path"
		return err
	}
	_, _, err := e.dev.Append(at, payload)
	return err
}

// commitSomePath appends under only one branch; at the join the MUST bit
// drops and the apply is unprotected on the fast=false path.
func commitSomePath(e *engine, at sim.Time, fast bool, payload []byte, facts []tuple.Fact) error {
	if fast {
		if _, _, err := e.dev.Append(at, payload); err != nil {
			return err
		}
	}
	return e.pyr.Insert(facts) // want "not dominated by an NVRAM append on every path"
}

// watermarkGood advances the flush watermark only after the append.
func watermarkGood(e *engine, at sim.Time, seq uint64, payload []byte) error {
	if _, _, err := e.dev.Append(at, payload); err != nil {
		return err
	}
	e.persistedSeq = seq
	return nil
}

// watermarkBad claims durability before the record is durable.
func watermarkBad(e *engine, at sim.Time, seq uint64, payload []byte) error {
	e.persistedSeq = seq // want "not dominated by an NVRAM append on every path"
	_, _, err := e.dev.Append(at, payload)
	return err
}

// applyHelper hides the insert behind a call. Its own body has no commit
// event, so nothing is reported here — the undominated apply floats to
// callers through the summary.
func applyHelper(e *engine, facts []tuple.Fact) error {
	return e.pyr.Insert(facts)
}

// commitViaHelper calls the applying helper before its append: the
// floated obligation is reported at the call site with the leaf named.
func commitViaHelper(e *engine, at sim.Time, payload []byte, facts []tuple.Fact) error {
	if err := applyHelper(e, facts); err != nil { // want "applies durable state"
		return err
	}
	_, _, err := e.dev.Append(at, payload)
	return err
}

// applyOnly never commits: recovery-replay-shaped code. Reporting it here
// would flag every caller twice, so the rule stays silent and lets the
// obligation travel via the summary instead.
func applyOnly(e *engine, facts []tuple.Fact) error {
	if err := e.pyr.Insert(facts); err != nil {
		return err
	}
	return e.pyr.Insert(facts)
}
