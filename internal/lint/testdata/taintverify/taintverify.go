// Package fixtaint is a purity-lint fixture for the taintverify rule:
// every // want comment marks a line where decoding unverified flash
// bytes must be reported, and the //lint:ignore below proves suppression
// works. The package is loaded only by lint_test.go.
package fixtaint

import (
	"errors"
	"hash/crc32"

	"purity/internal/sim"
	"purity/internal/ssd"
	"purity/internal/tuple"
)

var errChecksum = errors.New("checksum mismatch")

var schema = tuple.Schema{Cols: 2, KeyCols: 1}

// DecodeRaw decodes drive bytes with no CRC check at all — the seeded
// decode-before-verify violation from the issue.
func DecodeRaw(d *ssd.Device, at sim.Time) ([]tuple.Fact, error) {
	buf := make([]byte, 4096)
	if _, err := d.ReadAt(at, buf, 0); err != nil {
		return nil, err
	}
	facts, _, err := tuple.DecodeBatch(buf, schema) // want "unverified flash bytes"
	return facts, err
}

// DecodeChecked verifies the whole buffer against an expected CRC before
// decoding: clean, because the decode is only reachable on the matching
// branch.
func DecodeChecked(d *ssd.Device, at sim.Time, want uint32) ([]tuple.Fact, error) {
	buf := make([]byte, 4096)
	if _, err := d.ReadAt(at, buf, 0); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(buf) != want {
		return nil, errChecksum
	}
	facts, _, err := tuple.DecodeBatch(buf, schema)
	return facts, err
}

// DecodeWrongBranch checks the CRC but decodes on the failing branch —
// only the mismatch path is reported.
func DecodeWrongBranch(d *ssd.Device, at sim.Time, want uint32) ([]tuple.Fact, error) {
	buf := make([]byte, 4096)
	if _, err := d.ReadAt(at, buf, 0); err != nil {
		return nil, err
	}
	if crc32.ChecksumIEEE(buf) == want {
		facts, _, err := tuple.DecodeBatch(buf, schema)
		return facts, err
	}
	facts, _, err := tuple.DecodeBatch(buf, schema) // want "unverified flash bytes"
	return facts, err
}

// TaintFlowsThroughCopies: slicing, copy, and re-assignment all keep the
// taint alive until a check happens.
func TaintFlowsThroughCopies(d *ssd.Device, at sim.Time) (tuple.Fact, error) {
	raw := make([]byte, 4096)
	if _, err := d.ReadAt(at, raw, 0); err != nil {
		return tuple.Fact{}, err
	}
	scratch := make([]byte, 512)
	copy(scratch, raw[64:])
	record := scratch[:128]
	f, _, err := tuple.Decode(record, schema) // want "unverified flash bytes"
	return f, err
}

// FreshBufferIsClean never touches the device; decoding it is fine.
func FreshBufferIsClean() (tuple.Fact, error) {
	buf := make([]byte, 64)
	f, _, err := tuple.Decode(buf, schema)
	return f, err
}

// Suppressed documents why decoding without a CRC is safe here.
func Suppressed(d *ssd.Device, at sim.Time) ([]tuple.Fact, error) {
	buf := make([]byte, 4096)
	if _, err := d.ReadAt(at, buf, 0); err != nil {
		return nil, err
	}
	//lint:ignore taintverify fixture: the decode output feeds a verifier, not the engine
	facts, _, err := tuple.DecodeBatch(buf, schema)
	return facts, err
}
