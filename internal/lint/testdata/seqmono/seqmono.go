// Package fixseq is a purity-lint fixture for the seqmono rule: every
// // want comment marks a line where a fact's seqno provenance must be
// reported, and the //lint:ignore below proves suppression works. The
// package is loaded only by lint_test.go.
package fixseq

import "purity/internal/tuple"

// row mimics the relation row builders: a Fact(seq) constructor.
type row struct{ k uint64 }

func (r row) Fact(seq tuple.Seq) tuple.Fact {
	return tuple.Fact{Seq: seq, Cols: []uint64{r.k}}
}

// Literal invents a seqno out of thin air — the seeded violation.
func Literal() tuple.Fact {
	return tuple.Fact{Seq: 42, Cols: []uint64{1}} // want "literal seqno"
}

// Arithmetic computes a seqno from an allocated one.
func Arithmetic(seqs *tuple.SeqSource) tuple.Fact {
	s := seqs.Next()
	return tuple.Fact{Seq: s + 1, Cols: []uint64{1}} // want "seqno arithmetic"
}

// Converted launders an integer into a seqno.
func Converted(n int) tuple.Fact {
	return row{1}.Fact(tuple.Seq(n)) // want "conversion"
}

// Watermark stamps the allocator's current position instead of drawing a
// fresh number.
func Watermark(seqs *tuple.SeqSource) tuple.Fact {
	return row{1}.Fact(seqs.Current()) // want "Current"
}

// Reuse stamps two facts with one allocation.
func Reuse(seqs *tuple.SeqSource) []tuple.Fact {
	s := seqs.Next()
	a := row{1}.Fact(s)
	b := row{2}.Fact(s) // want "already stamped"
	return []tuple.Fact{a, b}
}

// LoopReuse is the same bug hidden behind a back edge: every iteration
// after the first reuses the seqno allocated outside the loop.
func LoopReuse(seqs *tuple.SeqSource) []tuple.Fact {
	out := make([]tuple.Fact, 0, 3)
	s := seqs.Next()
	for i := uint64(0); i < 3; i++ {
		out = append(out, row{i}.Fact(s)) // want "already stamped"
	}
	return out
}

// FreshPerFact is the clean pattern: one Next per construction, directly
// or through a reassigned variable.
func FreshPerFact(seqs *tuple.SeqSource) []tuple.Fact {
	a := row{1}.Fact(seqs.Next())
	s := seqs.Next()
	b := row{2}.Fact(s)
	s = seqs.Next()
	c := row{3}.Fact(s)
	return []tuple.Fact{a, b, c}
}

// CopiedFields are fine: rewriting an existing fact carries its seqno.
func CopiedFields(f tuple.Fact) tuple.Fact {
	return tuple.Fact{Seq: f.Seq, Cols: f.Cols}
}

// Suppressed documents why a fixed seqno is safe here.
func Suppressed() tuple.Fact {
	//lint:ignore seqmono fixture: bootstrap fact, seq zero is reserved by the format
	return tuple.Fact{Seq: 0, Cols: []uint64{1}}
}

// --- Sharded-commit lane patterns: the single global allocator is the
// only cross-lane ordering point, so lanes must neither carve up the
// seqno space arithmetically nor stamp a drained batch with one draw.

// LaneStride derives per-lane seqnos from one draw (lane i stamps
// base+i) — the sharding temptation that breaks the single-allocator
// invariant recovery replay depends on.
func LaneStride(seqs *tuple.SeqSource, lanes uint64) []tuple.Fact {
	base := seqs.Next()
	out := make([]tuple.Fact, 0, lanes)
	for i := uint64(0); i < lanes; i++ {
		out = append(out, row{i}.Fact(base+tuple.Seq(i))) // want "seqno arithmetic"
	}
	return out
}

// LaneBatchReuse is the group-commit bug: the batch leader draws one
// seqno and stamps every drained record with it.
func LaneBatchReuse(seqs *tuple.SeqSource, keys []uint64) []tuple.Fact {
	out := make([]tuple.Fact, 0, len(keys))
	s := seqs.Next()
	for _, k := range keys {
		out = append(out, row{k}.Fact(s)) // want "already stamped"
	}
	return out
}

// LaneHandoff is the clean batched-commit shape: each record carries the
// seqno allocated at enqueue time, and the leader stamps each ticket
// with its own — field reads keep the per-record provenance.
func LaneHandoff(seqs *tuple.SeqSource, keys []uint64) []tuple.Fact {
	type ticket struct {
		k   uint64
		seq tuple.Seq
	}
	queue := make([]ticket, 0, len(keys))
	for _, k := range keys {
		queue = append(queue, ticket{k: k, seq: seqs.Next()})
	}
	out := make([]tuple.Fact, 0, len(queue))
	for _, t := range queue {
		out = append(out, row{t.k}.Fact(t.seq))
	}
	return out
}
