package lint

// LockOrder is the whole-module static deadlock check: it assembles the
// lock-order graph (lockgraph.go) — every witnessed "class B acquired
// while class A held" edge, direct or floated out of synchronous callees —
// and reports
//
//   - any cycle reachable over blocking edges, as a potential deadlock
//     with the full witness path (function chain plus acquisition sites);
//     pure read-shared cycles are exempt, since RWMutex read locks admit
//     each other;
//   - a self-loop on one class: two instances ordered against each other,
//     which no static order can rank (this also covers the cross-instance
//     RLock→Lock upgrade — the same-chain upgrade is lockflow's);
//   - an inferred edge that contradicts a declared
//     `//lint:lockorder A < B < C` order, plus declarations that are
//     malformed, contradictory, or name a class never acquired.
//
// The findings are module-global, but Run checks per package: Prepare
// computes everything once and Check emits each finding from the package
// whose files anchor it, so a finding appears exactly once and lands
// where a //lint:ignore can reach it.

import "path/filepath"

type LockOrder struct{}

func (*LockOrder) Name() string { return "lockorder" }
func (*LockOrder) Doc() string {
	return "whole-module lock-order graph must be acyclic over blocking edges and consistent with //lint:lockorder declarations"
}

func (lo *LockOrder) Prepare(prog *Program) { prog.summaries().lockGraph() }

func (lo *LockOrder) Check(prog *Program, pkg *Package, rep *Reporter) {
	g := prog.summaries().lockGraph()
	for _, d := range g.pending {
		if filepath.Dir(prog.Fset.Position(d.pos).Filename) == pkg.Dir {
			rep.Reportf("lockorder", d.pos, "%s", d.msg)
		}
	}
}
