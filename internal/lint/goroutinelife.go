package lint

// GoroutineLife enforces that every goroutine the HA front end spawns can
// actually exit. The paper's availability argument (§5) assumes failover
// and shutdown drain cleanly; a monitor loop with no exit statement at all
// — `for { beat() }` with no return, break, or panic anywhere in it — can
// never be joined by Shutdown, leaks its stack and its captured resources,
// and turns "restart the controller" into "restart the process".
//
// The check is deliberately narrow so it never argues with legitimate
// designs: it flags only loops that are *provably* unexitable — an
// infinite `for`/`for {}` whose body contains no statement that can leave
// the loop (no return, no panic, no break reaching the loop, no goto).
// Loops that exit on a closed done channel, a context, an error, or a
// bounded count all contain such a statement and pass without the rule
// having to understand why. The infinite-loop inventory is computed per
// function by the summary layer (funcSummary.foreverLoops); this rule
// walks the call graph from each `go` statement and reports any such loop
// the spawned function can reach — so `go c.run()` is blamed at the spawn
// site even when the unexitable loop hides two helpers deep.

import (
	"go/ast"
	"go/token"
)

// GoroutineLife reports go statements whose spawned body can reach a loop
// with no exit path.
type GoroutineLife struct {
	Scope []string
}

func (*GoroutineLife) Name() string { return "goroutinelife" }
func (*GoroutineLife) Doc() string {
	return "every go statement must have a provable exit path: a spawned function must not reach a loop with no return, break, or panic"
}

func (gl *GoroutineLife) Prepare(prog *Program) { prog.summaries() }

func (gl *GoroutineLife) Check(prog *Program, pkg *Package, rep *Reporter) {
	if !inScope(gl.Scope, pkg.RelDir) {
		return
	}
	sums := prog.summaries()
	for _, fb := range packageBodies(pkg) {
		inspectNoFuncLit(fb.body, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			target := gl.spawnTarget(prog, pkg, gs)
			if !target.valid() {
				return true
			}
			for _, loop := range reachableForeverLoops(sums, target) {
				rep.Reportf("goroutinelife", gs.Pos(),
					"goroutine runs a loop with no exit statement (loop at %s): it can never be joined by Shutdown and leaks on every restart",
					posLabel(pkg.pkgFset(), loop))
			}
			return true
		})
		// go statements inside nested literals are seen when packageBodies
		// yields the literal itself, so nothing is missed by not descending.
	}
}

// spawnTarget resolves what a go statement runs: a function literal (its
// own graph node) or a statically-resolved module function. Indirect
// spawns through function values stay silent.
func (gl *GoroutineLife) spawnTarget(prog *Program, pkg *Package, gs *ast.GoStmt) funcNode {
	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		return funcNode{Lit: lit}
	}
	if fn := calleeFunc(pkg.Info, gs.Call); moduleFunc(fn, prog.ModPath) {
		return funcNode{Fn: fn}
	}
	return funcNode{}
}

// reachableForeverLoops unions foreverLoops over everything the spawned
// body can statically reach. Recursive/top nodes keep their syntactic loop
// inventory (localForeverLoops is per-body syntax, not a fixpoint), so
// collapsed summaries still contribute.
func reachableForeverLoops(sums *summaries, root funcNode) []token.Pos {
	var out []token.Pos
	visited := map[funcNode]bool{}
	var visit func(n funcNode, depth int)
	visit = func(n funcNode, depth int) {
		if visited[n] || depth > 200 {
			return
		}
		visited[n] = true
		gf := sums.cg.funcs[n]
		if gf == nil {
			return
		}
		if sum := sums.by[n]; sum != nil {
			out = append(out, sum.foreverLoops...)
		}
		for _, c := range gf.callees {
			visit(c, depth+1)
		}
	}
	visit(root, 0)
	return out
}
