// Package lint implements purity-lint: a standalone static analyzer that
// enforces the repo's concurrency, durability, and monotonicity conventions
// — the invariants the compiler cannot see. The paper's correctness argument
// leans on discipline ("facts are never updated in place", "Caller holds
// mu.", "every durable write is enumerable by the crash sweep"); this
// package turns that discipline into machine-checked rules.
//
// The analyzer is stdlib-only by design: go/parser for syntax, go/types for
// semantics, and go/importer's source importer for the standard library, so
// the tool builds and runs anywhere the repo does, with no x/tools
// dependency. Module-internal packages are discovered by walking the module
// tree and are type-checked in dependency order by the loader below.
package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one parsed, type-checked package of the module.
type Package struct {
	Path      string // import path ("purity/internal/core")
	Dir       string // absolute directory
	RelDir    string // directory relative to the module root ("" for root)
	Requested bool   // matched a load pattern (rules only run on these)
	Files     []*ast.File
	Types     *types.Package
	Info      *types.Info

	fset    *token.FileSet
	imports []string // module-internal import paths, for topo ordering
}

// Program is the loaded slice of the module: every requested package plus
// the module-internal dependencies needed to type-check them.
type Program struct {
	Fset    *token.FileSet
	ModRoot string
	ModPath string
	Pkgs    []*Package // in type-check (dependency) order
	ByPath  map[string]*Package

	sums *summaries // lazily-built interprocedural summary table (summary.go)
}

// FindModuleRoot walks up from dir to the directory holding go.mod and
// returns it together with the module path declared there.
func FindModuleRoot(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module line", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod above %s", dir)
		}
		d = parent
	}
}

// Load parses and type-checks the packages matching patterns, resolved
// relative to dir. Patterns are directories ("./internal/core",
// "internal/lint/testdata/errdrop") or recursive globs ("./...",
// "./internal/..."). Recursive globs skip testdata, vendor, and hidden
// directories — matching the go tool — but an explicit directory pattern
// loads anything, which is how fixture packages under testdata are linted.
func Load(dir string, patterns []string) (*Program, error) {
	base, err := filepath.Abs(dir)
	if err != nil {
		return nil, err
	}
	root, modPath, err := FindModuleRoot(base)
	if err != nil {
		return nil, err
	}
	prog := &Program{
		Fset:    token.NewFileSet(),
		ModRoot: root,
		ModPath: modPath,
		ByPath:  map[string]*Package{},
	}

	var requested []string
	for _, pat := range patterns {
		switch {
		case pat == "..." || strings.HasSuffix(pat, "/...") || pat == "./...":
			walkBase := filepath.Join(base, strings.TrimSuffix(strings.TrimSuffix(pat, "..."), "/"))
			err := filepath.WalkDir(walkBase, func(p string, d os.DirEntry, err error) error {
				if err != nil {
					return err
				}
				if !d.IsDir() {
					return nil
				}
				name := d.Name()
				if p != walkBase && (name == "testdata" || name == "vendor" ||
					strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
					return filepath.SkipDir
				}
				if hasGoFiles(p) {
					requested = append(requested, p)
				}
				return nil
			})
			if err != nil {
				return nil, err
			}
		default:
			p := pat
			if !filepath.IsAbs(p) {
				p = filepath.Join(base, p)
			}
			if !hasGoFiles(p) {
				return nil, fmt.Errorf("lint: no Go files in %s", pat)
			}
			requested = append(requested, p)
		}
	}
	if len(requested) == 0 {
		return nil, fmt.Errorf("lint: no packages matched %v", patterns)
	}
	sort.Strings(requested)

	for _, d := range requested {
		if _, err := prog.parseDir(d, true); err != nil {
			return nil, err
		}
	}
	// Pull in module-internal dependencies until the import closure is
	// parsed. The standard library is handled by the source importer.
	for {
		var missing []string
		for _, p := range prog.Pkgs {
			for _, imp := range p.imports {
				if prog.ByPath[imp] == nil {
					missing = append(missing, imp)
				}
			}
		}
		if len(missing) == 0 {
			break
		}
		sort.Strings(missing)
		for _, imp := range missing {
			if prog.ByPath[imp] != nil {
				continue
			}
			rel := strings.TrimPrefix(strings.TrimPrefix(imp, modPath), "/")
			if _, err := prog.parseDir(filepath.Join(root, filepath.FromSlash(rel)), false); err != nil {
				return nil, fmt.Errorf("lint: resolving import %q: %w", imp, err)
			}
		}
	}

	ordered, err := prog.topoOrder()
	if err != nil {
		return nil, err
	}
	prog.Pkgs = ordered
	if err := prog.typeCheck(); err != nil {
		return nil, err
	}
	return prog, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if name := e.Name(); !e.IsDir() && strings.HasSuffix(name, ".go") &&
			!strings.HasSuffix(name, "_test.go") && !strings.HasPrefix(name, ".") {
			return true
		}
	}
	return false
}

// parseDir parses the non-test Go files of one directory into a Package
// (without type information yet) and registers it in the program.
func (prog *Program) parseDir(dir string, requested bool) (*Package, error) {
	rel, err := filepath.Rel(prog.ModRoot, dir)
	if err != nil {
		return nil, err
	}
	if strings.HasPrefix(rel, "..") {
		return nil, fmt.Errorf("lint: %s is outside module %s", dir, prog.ModRoot)
	}
	path := prog.ModPath
	if rel != "." {
		path = prog.ModPath + "/" + filepath.ToSlash(rel)
	}
	if p := prog.ByPath[path]; p != nil {
		p.Requested = p.Requested || requested
		return p, nil
	}

	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	pkg := &Package{Path: path, Dir: dir, Requested: requested, fset: prog.Fset}
	if rel != "." {
		pkg.RelDir = filepath.ToSlash(rel)
	}
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") ||
			strings.HasSuffix(name, "_test.go") || strings.HasPrefix(name, ".") {
			continue
		}
		f, err := parser.ParseFile(prog.Fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		pkg.Files = append(pkg.Files, f)
	}
	if len(pkg.Files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	for _, f := range pkg.Files {
		for _, imp := range f.Imports {
			ip := strings.Trim(imp.Path.Value, `"`)
			if ip == prog.ModPath || strings.HasPrefix(ip, prog.ModPath+"/") {
				pkg.imports = append(pkg.imports, ip)
			}
		}
	}
	prog.Pkgs = append(prog.Pkgs, pkg)
	prog.ByPath[path] = pkg
	return pkg, nil
}

// topoOrder sorts packages so every module-internal import precedes its
// importer — the order type-checking requires.
func (prog *Program) topoOrder() ([]*Package, error) {
	const (
		white = iota // unvisited
		grey         // on the DFS stack: revisiting means an import cycle
		black        // done
	)
	state := map[*Package]int{}
	var out []*Package
	var visit func(p *Package) error
	visit = func(p *Package) error {
		switch state[p] {
		case black:
			return nil
		case grey:
			return fmt.Errorf("lint: import cycle through %s", p.Path)
		}
		state[p] = grey
		deps := append([]string(nil), p.imports...)
		sort.Strings(deps)
		for _, imp := range deps {
			if err := visit(prog.ByPath[imp]); err != nil {
				return err
			}
		}
		state[p] = black
		out = append(out, p)
		return nil
	}
	stable := append([]*Package(nil), prog.Pkgs...)
	sort.Slice(stable, func(i, j int) bool { return stable[i].Path < stable[j].Path })
	for _, p := range stable {
		if err := visit(p); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// progImporter resolves module-internal imports from the program and
// everything else (the standard library) through the source importer.
type progImporter struct {
	prog *Program
	std  types.ImporterFrom
}

func (im *progImporter) Import(path string) (*types.Package, error) {
	return im.ImportFrom(path, "", 0)
}

func (im *progImporter) ImportFrom(path, srcDir string, mode types.ImportMode) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if p := im.prog.ByPath[path]; p != nil {
		if p.Types == nil {
			return nil, fmt.Errorf("lint: internal error: %s imported before being checked", path)
		}
		return p.Types, nil
	}
	return im.std.ImportFrom(path, srcDir, mode)
}

func (prog *Program) typeCheck() error {
	// The source importer type-checks the standard library from $GOROOT/src;
	// with cgo disabled it sees the pure-Go variants of packages like net,
	// which have identical exported types and need no C toolchain.
	build.Default.CgoEnabled = false
	std, ok := importer.ForCompiler(prog.Fset, "source", nil).(types.ImporterFrom)
	if !ok {
		return fmt.Errorf("lint: source importer does not implement ImporterFrom")
	}
	imp := &progImporter{prog: prog, std: std}

	for _, p := range prog.Pkgs {
		var errs []error
		conf := types.Config{
			Importer: imp,
			Error: func(err error) {
				if len(errs) < 10 {
					errs = append(errs, err)
				}
			},
		}
		p.Info = &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		tpkg, _ := conf.Check(p.Path, prog.Fset, p.Files, p.Info)
		if len(errs) > 0 {
			msgs := make([]string, len(errs))
			for i, e := range errs {
				msgs[i] = e.Error()
			}
			return fmt.Errorf("lint: %s does not type-check:\n\t%s", p.Path, strings.Join(msgs, "\n\t"))
		}
		p.Types = tpkg
	}
	return nil
}
