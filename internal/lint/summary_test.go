package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
	"testing"
)

// loadSummaryFixture loads testdata/summary and returns the program, the
// fixture package, and the built summary table.
func loadSummaryFixture(t *testing.T) (*Program, *Package, *summaries) {
	t.Helper()
	prog, err := Load(".", []string{filepath.Join("testdata", "summary")})
	if err != nil {
		t.Fatal(err)
	}
	var pkg *Package
	for _, p := range prog.Pkgs {
		if p.Requested {
			pkg = p
		}
	}
	if pkg == nil {
		t.Fatal("fixture package not loaded")
	}
	return prog, pkg, prog.summaries()
}

// fixtureFunc resolves a package-level function or a method of a named
// type ("rec.Ping" or "ReadRec") to its *types.Func.
func fixtureFunc(t *testing.T, pkg *Package, name string) *types.Func {
	t.Helper()
	if dot := len(name); dot > 0 {
		for i := 0; i < len(name); i++ {
			if name[i] != '.' {
				continue
			}
			obj := pkg.Types.Scope().Lookup(name[:i])
			if obj == nil {
				t.Fatalf("type %s not found", name[:i])
			}
			named, ok := obj.Type().(*types.Named)
			if !ok {
				t.Fatalf("%s is not a named type", name[:i])
			}
			for m := 0; m < named.NumMethods(); m++ {
				if fn := named.Method(m); fn.Name() == name[i+1:] {
					return fn
				}
			}
			t.Fatalf("method %s not found", name)
		}
	}
	fn, ok := pkg.Types.Scope().Lookup(name).(*types.Func)
	if !ok {
		t.Fatalf("function %s not found", name)
	}
	return fn
}

func TestSummaryRecursionCollapsesToTop(t *testing.T) {
	_, pkg, sums := loadSummaryFixture(t)
	for _, name := range []string{"rec.Ping", "rec.Pong"} {
		fn := fixtureFunc(t, pkg, name)
		gf := sums.cg.funcs[funcNode{Fn: fn}]
		if gf == nil || !gf.recursive {
			t.Errorf("%s: want recursive=true (mutual recursion)", name)
		}
		sum := sums.ofFunc(fn)
		if sum == nil || !sum.top {
			t.Errorf("%s: want summary collapsed to top", name)
		}
		if sum != nil && sum.conn != nil {
			t.Errorf("%s: top summary must make no conn claims", name)
		}
	}
	// The boolean fixpoint is exact even around the cycle: Pong locks its
	// own mu, and Ping inherits it through the own-receiver call edge.
	if sum := sums.ofFunc(fixtureFunc(t, pkg, "rec.Pong")); !sum.locksOwnMu {
		t.Error("rec.Pong: want locksOwnMu=true (direct lock)")
	}
	if sum := sums.ofFunc(fixtureFunc(t, pkg, "rec.Ping")); !sum.locksOwnMu {
		t.Error("rec.Ping: want locksOwnMu=true via fixpoint through the cycle")
	}
}

func TestSummaryBooleanFixpointThroughHelpers(t *testing.T) {
	_, pkg, sums := loadSummaryFixture(t)
	if sum := sums.ofFunc(fixtureFunc(t, pkg, "rec.LockHelper")); !sum.locksOwnMu {
		t.Error("rec.LockHelper: want locksOwnMu=true (local effect)")
	}
	if sum := sums.ofFunc(fixtureFunc(t, pkg, "rec.LockViaHelper")); !sum.locksOwnMu {
		t.Error("rec.LockViaHelper: want locksOwnMu=true inherited from LockHelper")
	}
	if sum := sums.ofFunc(fixtureFunc(t, pkg, "rec.Cleanup")); !sum.releasesRecv {
		t.Error("rec.Cleanup: want releasesRecv=true (semaphore receive)")
	}
	if sum := sums.ofFunc(fixtureFunc(t, pkg, "rec.Finish")); !sum.releasesRecv {
		t.Error("rec.Finish: want releasesRecv=true inherited from Cleanup")
	}
	if sum := sums.ofFunc(fixtureFunc(t, pkg, "rec.Tick")); sum == nil || sum.releasesRecv || sum.acquiresRecv || sum.locksOwnMu {
		t.Error("rec.Tick: want an effect-free summary")
	}
}

func TestCallGraphMethodValuesAndFuncLits(t *testing.T) {
	_, pkg, sums := loadSummaryFixture(t)
	start := fixtureFunc(t, pkg, "rec.Start")
	tick := fixtureFunc(t, pkg, "rec.Tick")
	gf := sums.cg.funcs[funcNode{Fn: start}]
	if gf == nil {
		t.Fatal("rec.Start has no graph node")
	}
	var sawTick, sawLit bool
	var lit *ast.FuncLit
	for _, c := range gf.callees {
		if c.Fn == tick {
			sawTick = true
		}
		if c.Lit != nil {
			sawLit = true
			lit = c.Lit
		}
	}
	if !sawTick {
		t.Error("rec.Start: want a reference edge to rec.Tick (method value)")
	}
	if !sawLit {
		t.Fatal("rec.Start: want an edge to its nested literal")
	}
	if sums.cg.funcs[funcNode{Lit: lit}] == nil {
		t.Error("nested literal: want its own call-graph node")
	}
}

func TestSummaryForeverLoops(t *testing.T) {
	_, pkg, sums := loadSummaryFixture(t)
	if sum := sums.ofFunc(fixtureFunc(t, pkg, "rec.Forever")); len(sum.foreverLoops) != 1 {
		t.Errorf("rec.Forever: want exactly 1 unexitable loop, got %d", len(sum.foreverLoops))
	}
	for _, name := range []string{"rec.Ping", "rec.Start", "ReadRec"} {
		if sum := sums.ofFunc(fixtureFunc(t, pkg, name)); len(sum.foreverLoops) != 0 {
			t.Errorf("%s: want no unexitable loops, got %d", name, len(sum.foreverLoops))
		}
	}
}

func TestRecursiveConnSummaryStaysSilent(t *testing.T) {
	_, pkg, sums := loadSummaryFixture(t)
	fn := fixtureFunc(t, pkg, "ReadRec")
	gf := sums.cg.funcs[funcNode{Fn: fn}]
	if gf == nil || !gf.recursive {
		t.Fatal("ReadRec: want recursive=true (direct self-call)")
	}
	sum := sums.ofFunc(fn)
	if !sum.top || sum.conn != nil {
		t.Error("ReadRec: recursive conn user must collapse to top with no conn claims")
	}
}
