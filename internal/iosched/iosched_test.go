package iosched

import (
	"testing"

	"purity/internal/sim"
)

func TestTrackerPercentile(t *testing.T) {
	tr := NewTracker(100)
	if tr.Percentile(95) != 0 {
		t.Fatal("empty tracker nonzero")
	}
	for i := 1; i <= 100; i++ {
		tr.Record(sim.Time(i))
	}
	if got := tr.Percentile(95); got != 96 {
		t.Fatalf("p95 = %v, want 96", got)
	}
	if got := tr.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if tr.Count() != 100 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestTrackerSlidingWindow(t *testing.T) {
	tr := NewTracker(10)
	for i := 0; i < 10; i++ {
		tr.Record(1000)
	}
	// New regime: window slides, old values age out.
	for i := 0; i < 10; i++ {
		tr.Record(1)
	}
	if got := tr.Percentile(95); got != 1 {
		t.Fatalf("p95 after regime change = %v", got)
	}
	if tr.Count() != 10 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestPolicyShouldHedge(t *testing.T) {
	p := DefaultPolicy()
	tr := NewTracker(128)
	// Not enough samples: never hedge.
	tr.Record(100)
	if p.ShouldHedge(tr, sim.Second) {
		t.Fatal("hedged without history")
	}
	for i := 0; i < 128; i++ {
		tr.Record(100 * sim.Microsecond)
	}
	if p.ShouldHedge(tr, 90*sim.Microsecond) {
		t.Fatal("hedged a fast read")
	}
	if !p.ShouldHedge(tr, 5*sim.Millisecond) {
		t.Fatal("did not hedge a slow read")
	}
	// Hedging disabled.
	off := Policy{HedgePercentile: 0}
	if off.ShouldHedge(tr, sim.Second) {
		t.Fatal("disabled policy hedged")
	}
}
