package iosched

import (
	"testing"

	"purity/internal/sim"
)

func TestTrackerPercentile(t *testing.T) {
	tr := NewTracker(100)
	if tr.Percentile(95) != 0 {
		t.Fatal("empty tracker nonzero")
	}
	for i := 1; i <= 100; i++ {
		tr.Record(sim.Time(i))
	}
	if got := tr.Percentile(95); got != 96 {
		t.Fatalf("p95 = %v, want 96", got)
	}
	if got := tr.Percentile(0); got != 1 {
		t.Fatalf("p0 = %v", got)
	}
	if tr.Count() != 100 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestTrackerSlidingWindow(t *testing.T) {
	tr := NewTracker(10)
	for i := 0; i < 10; i++ {
		tr.Record(1000)
	}
	// New regime: window slides, old values age out.
	for i := 0; i < 10; i++ {
		tr.Record(1)
	}
	if got := tr.Percentile(95); got != 1 {
		t.Fatalf("p95 after regime change = %v", got)
	}
	if tr.Count() != 10 {
		t.Fatalf("Count = %d", tr.Count())
	}
}

func TestPolicyShouldHedge(t *testing.T) {
	p := DefaultPolicy()
	tr := NewTracker(128)
	// Not enough samples: never hedge.
	tr.Record(100)
	if p.ShouldHedge(tr, sim.Second) {
		t.Fatal("hedged without history")
	}
	for i := 0; i < 128; i++ {
		tr.Record(100 * sim.Microsecond)
	}
	if p.ShouldHedge(tr, 90*sim.Microsecond) {
		t.Fatal("hedged a fast read")
	}
	if !p.ShouldHedge(tr, 5*sim.Millisecond) {
		t.Fatal("did not hedge a slow read")
	}
	// Hedging disabled.
	off := Policy{HedgePercentile: 0}
	if off.ShouldHedge(tr, sim.Second) {
		t.Fatal("disabled policy hedged")
	}
}

func TestPolicyShouldHedgeUnderSLO(t *testing.T) {
	// Window: 93 fast reads, 7 slow reads — p90 lands in the fast tier,
	// p95 in the slow one. A latency between them hedges only while the
	// SLO is threatened.
	p := Policy{HedgePercentile: 95, SLOHedgePercentile: 90, MinHedgeSamples: 64}
	tr := NewTracker(100)
	for i := 0; i < 93; i++ {
		tr.Record(100 * sim.Microsecond)
	}
	for i := 0; i < 7; i++ {
		tr.Record(10 * sim.Millisecond)
	}
	lat := 1 * sim.Millisecond // above p90 (100µs), below p95 (10ms)
	if p.ShouldHedgeUnder(tr, lat, false) {
		t.Fatal("hedged below p95 with SLO healthy")
	}
	if !p.ShouldHedgeUnder(tr, lat, true) {
		t.Fatal("did not hedge above p90 with SLO threatened")
	}
	// Without the SLO percentile the threatened bit changes nothing.
	plain := Policy{HedgePercentile: 95, MinHedgeSamples: 64}
	if plain.ShouldHedgeUnder(tr, lat, true) {
		t.Fatal("policy without SLOHedgePercentile hedged early")
	}
}

func TestGovernor(t *testing.T) {
	g := NewGovernor(sim.Millisecond, 256)
	if g.Threatened() {
		t.Fatal("cold governor threatened")
	}
	// Below the minimum sample count: never threatened, even if slow.
	for i := 0; i < 63; i++ {
		g.RecordRead(10 * sim.Millisecond)
	}
	if g.Threatened() {
		t.Fatal("threatened without minimum context")
	}
	g.RecordRead(10 * sim.Millisecond)
	if !g.Threatened() {
		t.Fatal("p99.9 over budget not reported")
	}
	if g.P999() <= sim.Millisecond {
		t.Fatalf("P999 = %v", g.P999())
	}
	// Fast reads age the slow regime out of the window.
	for i := 0; i < 256; i++ {
		g.RecordRead(100 * sim.Microsecond)
	}
	if g.Threatened() {
		t.Fatal("still threatened after recovery")
	}
	g.NoteDeferral()
	g.NoteDeferral()
	if g.Deferrals() != 2 {
		t.Fatalf("Deferrals = %d", g.Deferrals())
	}
}

func TestGovernorDisabledAndNil(t *testing.T) {
	off := NewGovernor(-1, 16)
	for i := 0; i < 128; i++ {
		off.RecordRead(sim.Second)
	}
	if off.Threatened() {
		t.Fatal("disabled governor threatened")
	}
	var nilGov *Governor
	nilGov.RecordRead(sim.Second)
	nilGov.NoteDeferral()
	if nilGov.Threatened() || nilGov.Deferrals() != 0 || nilGov.Budget() != 0 || nilGov.P999() != 0 {
		t.Fatal("nil governor not inert")
	}
}
