// Package iosched implements the request-scheduling policies of §4.4 of
// the paper: tail-latency tracking and the hedging rule — "measure the
// latency of each request and use Reed-Solomon to reconstruct requested
// data whenever a request takes longer than our 95th percentile latency".
// The busy-drive avoidance half of §4.4 lives in the layout reader (it
// needs stripe geometry); this package supplies the adaptive thresholds.
package iosched

import (
	"sort"
	"sync"

	"purity/internal/sim"
)

// Tracker keeps a sliding window of recent request latencies and answers
// percentile queries against it. Safe for concurrent use.
type Tracker struct {
	mu     sync.Mutex
	window []sim.Time
	pos    int
	filled bool
	sorted []sim.Time
	dirty  bool
}

// NewTracker returns a tracker over a window of n observations.
func NewTracker(n int) *Tracker {
	if n <= 0 {
		n = 1024
	}
	return &Tracker{window: make([]sim.Time, n)}
}

// Record adds a request latency.
func (t *Tracker) Record(d sim.Time) {
	t.mu.Lock()
	t.window[t.pos] = d
	t.pos++
	if t.pos == len(t.window) {
		t.pos = 0
		t.filled = true
	}
	t.dirty = true
	t.mu.Unlock()
}

// Percentile returns the p-th percentile of the window (0 when empty).
func (t *Tracker) Percentile(p float64) sim.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.pos
	if t.filled {
		n = len(t.window)
	}
	if n == 0 {
		return 0
	}
	if t.dirty {
		t.sorted = append(t.sorted[:0], t.window[:n]...)
		sort.Slice(t.sorted, func(i, j int) bool { return t.sorted[i] < t.sorted[j] })
		t.dirty = false
	}
	idx := int(p / 100 * float64(len(t.sorted)))
	if idx >= len(t.sorted) {
		idx = len(t.sorted) - 1
	}
	return t.sorted[idx]
}

// Count returns the number of observations in the window.
func (t *Tracker) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		return len(t.window)
	}
	return t.pos
}

// Policy bundles the read-path scheduling decisions.
type Policy struct {
	// AvoidBusy treats drives mid-program as failed and reconstructs
	// around them.
	AvoidBusy bool
	// HedgePercentile (>0 enables hedging): when a direct read's latency
	// exceeds this percentile of recent reads, reissue it as a
	// reconstruction and take the earlier completion.
	HedgePercentile float64
	// MinHedgeSamples gates hedging until the tracker has context.
	MinHedgeSamples int
}

// DefaultPolicy mirrors the paper: busy avoidance on, hedge at p95.
func DefaultPolicy() Policy {
	return Policy{AvoidBusy: true, HedgePercentile: 95, MinHedgeSamples: 64}
}

// ShouldHedge reports whether a read that took `latency` warrants a
// reconstruction race, given recent history.
func (p Policy) ShouldHedge(t *Tracker, latency sim.Time) bool {
	if p.HedgePercentile <= 0 || t.Count() < p.MinHedgeSamples {
		return false
	}
	return latency > t.Percentile(p.HedgePercentile)
}
