// Package iosched implements the request-scheduling policies of §4.4 of
// the paper: tail-latency tracking and the hedging rule — "measure the
// latency of each request and use Reed-Solomon to reconstruct requested
// data whenever a request takes longer than our 95th percentile latency".
// The busy-drive avoidance half of §4.4 lives in the layout reader (it
// needs stripe geometry); this package supplies the adaptive thresholds.
package iosched

import (
	"sort"
	"sync"
	"sync/atomic"

	"purity/internal/sim"
)

// Tracker keeps a sliding window of recent request latencies and answers
// percentile queries against it. Safe for concurrent use.
type Tracker struct {
	mu     sync.Mutex
	window []sim.Time
	pos    int
	filled bool
	sorted []sim.Time
	dirty  bool
}

// NewTracker returns a tracker over a window of n observations.
func NewTracker(n int) *Tracker {
	if n <= 0 {
		n = 1024
	}
	return &Tracker{window: make([]sim.Time, n)}
}

// Record adds a request latency.
func (t *Tracker) Record(d sim.Time) {
	t.mu.Lock()
	t.window[t.pos] = d
	t.pos++
	if t.pos == len(t.window) {
		t.pos = 0
		t.filled = true
	}
	t.dirty = true
	t.mu.Unlock()
}

// Percentile returns the p-th percentile of the window (0 when empty).
func (t *Tracker) Percentile(p float64) sim.Time {
	t.mu.Lock()
	defer t.mu.Unlock()
	n := t.pos
	if t.filled {
		n = len(t.window)
	}
	if n == 0 {
		return 0
	}
	if t.dirty {
		t.sorted = append(t.sorted[:0], t.window[:n]...)
		sort.Slice(t.sorted, func(i, j int) bool { return t.sorted[i] < t.sorted[j] })
		t.dirty = false
	}
	idx := int(p / 100 * float64(len(t.sorted)))
	if idx >= len(t.sorted) {
		idx = len(t.sorted) - 1
	}
	return t.sorted[idx]
}

// Count returns the number of observations in the window.
func (t *Tracker) Count() int {
	t.mu.Lock()
	defer t.mu.Unlock()
	if t.filled {
		return len(t.window)
	}
	return t.pos
}

// Policy bundles the read-path scheduling decisions.
type Policy struct {
	// AvoidBusy treats drives mid-program as failed and reconstructs
	// around them.
	AvoidBusy bool
	// HedgePercentile (>0 enables hedging): when a direct read's latency
	// exceeds this percentile of recent reads, reissue it as a
	// reconstruction and take the earlier completion.
	HedgePercentile float64
	// MinHedgeSamples gates hedging until the tracker has context.
	MinHedgeSamples int
	// SLOHedgePercentile (>0 enables the SLO tweak): when the tail-latency
	// governor reports the p99.9 budget threatened, foreground reads hedge
	// at this lower percentile instead of HedgePercentile — trading extra
	// reconstruction reads for pulling the tail back under the SLO.
	SLOHedgePercentile float64
}

// DefaultPolicy mirrors the paper: busy avoidance on, hedge at p95, and
// hedge earlier (p90) while the tail SLO is threatened.
func DefaultPolicy() Policy {
	return Policy{AvoidBusy: true, HedgePercentile: 95, MinHedgeSamples: 64, SLOHedgePercentile: 90}
}

// ShouldHedge reports whether a read that took `latency` warrants a
// reconstruction race, given recent history.
func (p Policy) ShouldHedge(t *Tracker, latency sim.Time) bool {
	return p.ShouldHedgeUnder(t, latency, false)
}

// ShouldHedgeUnder is ShouldHedge with the governor's view folded in: while
// the tail SLO is threatened (and the policy opts in via
// SLOHedgePercentile), hedging triggers at the lower percentile so
// foreground reads outrank whatever is congesting the drives.
func (p Policy) ShouldHedgeUnder(t *Tracker, latency sim.Time, sloThreatened bool) bool {
	hp := p.HedgePercentile
	if sloThreatened && p.SLOHedgePercentile > 0 && p.SLOHedgePercentile < hp {
		hp = p.SLOHedgePercentile
	}
	if hp <= 0 || t.Count() < p.MinHedgeSamples {
		return false
	}
	return latency > t.Percentile(hp)
}

// Governor tracks foreground read latencies against the paper's tail SLO
// (§4.4: 99.9% of I/O under 1 ms) and arbitrates foreground vs. background
// work: while the recent p99.9 exceeds the budget, background operations
// (scrub steps, low-priority front-end queues) yield to foreground reads.
// Safe for concurrent use.
type Governor struct {
	budget     sim.Time
	minSamples int
	tracker    *Tracker
	deferrals  atomic.Int64
}

// NewGovernor returns a governor over a sliding window of `window` reads
// with the given p99.9 latency budget. A non-positive budget disables it
// (Threatened is always false).
func NewGovernor(budget sim.Time, window int) *Governor {
	return &Governor{budget: budget, minSamples: 64, tracker: NewTracker(window)}
}

// Budget returns the configured p99.9 latency budget.
func (g *Governor) Budget() sim.Time {
	if g == nil {
		return 0
	}
	return g.budget
}

// RecordRead adds one foreground read latency observation.
func (g *Governor) RecordRead(lat sim.Time) {
	if g == nil || g.budget <= 0 {
		return
	}
	g.tracker.Record(lat)
}

// Threatened reports whether the recent p99.9 read latency exceeds the
// budget. It stays false until the window has minimum context, so a cold
// array never starves its background work.
func (g *Governor) Threatened() bool {
	if g == nil || g.budget <= 0 || g.tracker.Count() < g.minSamples {
		return false
	}
	return g.tracker.Percentile(99.9) > g.budget
}

// P999 returns the current p99.9 of the window (0 when empty).
func (g *Governor) P999() sim.Time {
	if g == nil {
		return 0
	}
	return g.tracker.Percentile(99.9)
}

// NoteDeferral counts one background operation deferred in favor of
// foreground reads.
func (g *Governor) NoteDeferral() {
	if g != nil {
		g.deferrals.Add(1)
	}
}

// Deferrals returns how many background operations the governor deferred.
func (g *Governor) Deferrals() int64 {
	if g == nil {
		return 0
	}
	return g.deferrals.Load()
}
