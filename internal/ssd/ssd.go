// Package ssd models the consumer MLC solid state drives Purity is built
// from (§2.1, §5.1 of the paper). The model keeps data in RAM but reproduces
// the behaviours the paper's design reacts to:
//
//   - Parallel dies: peak throughput needs deep queues; a die servicing a
//     program or erase stalls reads to it (the read-latency spikes §4.4
//     schedules around).
//   - Pages, erase blocks, program/erase asymmetry: pages must be erased in
//     erase-block units before rewrite; erases are slow.
//   - A simplified FTL: purely sequential writes within an allocation unit
//     pass through at native cost; random overwrites trigger FTL
//     relocation, costing extra latency and write amplification ("random
//     writes considered harmful").
//   - Endurance: erases wear blocks; worn blocks begin failing reads
//     (detected, as with a real drive's internal ECC).
//   - Whole-drive failure and revival, for pull-a-drive experiments.
//
// All latencies are simulated (package sim); operations take an issue time
// and return a completion time. Data operations are real byte copies, so
// the storage stack above is exercised end to end.
package ssd

import (
	"errors"
	"fmt"
	"sync"

	"purity/internal/sim"
)

// Config describes one drive's geometry and timing.
type Config struct {
	Capacity       int64 // usable bytes; must be a multiple of EraseBlockSize
	Dies           int   // independent parallel dies
	PageSize       int   // program/read granularity, bytes
	EraseBlockSize int   // erase granularity, bytes
	// DieStripe is the channel-striping granularity: consecutive DieStripe
	// chunks of the address space interleave across dies, so large writes
	// program several dies in parallel — and stall reads on exactly those
	// dies (§4.4's latency spikes). Defaults to 32 KiB.
	DieStripe int

	ReadLatency    sim.Time // fixed page-read service time
	ProgramLatency sim.Time // fixed page-program service time
	EraseLatency   sim.Time // per erase-block erase time
	TransferPerKiB sim.Time // bus transfer cost per KiB moved

	// RandomWritePenalty multiplies program cost for non-append writes and
	// adds (penalty-1)× write amplification, modelling FTL relocation.
	RandomWritePenalty int

	// PELimit is the rated program/erase cycles per erase block. Beyond it,
	// each further erase gives the block a WearFailureProb chance of
	// becoming bad (reads return ErrCorrupt until erased... in real drives
	// the block is retired; we keep it failing to force upper-layer repair).
	PELimit         int
	WearFailureProb float64 // per-erase probability once past PELimit

	// BitFlipRate is the per-program probability (per touched erase block)
	// of a single silent bit flip in the just-written data — the latent
	// errors that slip past drive-internal ECC (§5.1). Unlike a bad block,
	// the drive returns the flipped data without error; only end-to-end
	// CRCs above catch it. Zero disables injection.
	BitFlipRate float64

	Seed uint64 // RNG seed for wear failures and bit flips
}

// DefaultConfig returns the scaled-down drive the test suite and benchmarks
// use: timings are typical consumer-MLC figures; capacity is small so arrays
// of 11+ drives stay laptop-sized.
func DefaultConfig() Config {
	return Config{
		Capacity:       256 << 20,
		Dies:           8,
		PageSize:       4 << 10,
		EraseBlockSize: 1 << 20,
		DieStripe:      32 << 10,
		ReadLatency:    80 * sim.Microsecond,
		// Effective per-page program cost: raw MLC programs run ~1.3 ms,
		// but multi-plane interleaving overlaps several pages per die.
		ProgramLatency:     250 * sim.Microsecond,
		EraseLatency:       4 * sim.Millisecond,
		TransferPerKiB:     2 * sim.Microsecond,
		RandomWritePenalty: 4,
		PELimit:            3000,
		WearFailureProb:    0.02,
		Seed:               1,
	}
}

// Errors returned by device operations.
var (
	ErrFailed    = errors.New("ssd: drive failed")
	ErrCorrupt   = errors.New("ssd: uncorrectable page (drive-internal ECC)")
	ErrBounds    = errors.New("ssd: access out of bounds")
	ErrNotErased = errors.New("ssd: programming a page that was not erased")
)

// Stats counts a drive's lifetime activity.
type Stats struct {
	HostBytesRead     int64
	HostBytesWritten  int64
	FlashBytesWritten int64 // includes FTL relocation amplification
	Erases            int64
	RandomWrites      int64 // writes that paid the FTL relocation penalty
	StalledReads      int64 // reads that queued behind a program/erase
	MaxWear           int   // highest per-block P/E count
	BadBlocks         int
	BitFlips          int64 // silent bit flips injected (BitFlipRate + FlipBit)
}

// dieState tracks one die's current contiguous busy period. Operations
// queue behind busyUntil; an operation issued after an idle gap starts a
// new period. BusyAt is true only inside [busyFrom, busyUntil).
type dieState struct {
	busyFrom  sim.Time
	busyUntil sim.Time
}

type eraseBlock struct {
	wear    int
	bad     bool
	written int64 // high-water mark of programmed bytes within the block
}

// Device is one simulated drive. Methods are safe for concurrent use; the
// timing model serializes per-die work exactly as a real die would.
type Device struct {
	cfg Config
	id  string

	mu      sync.Mutex
	failed  bool
	data    map[int64][]byte // erase-block index -> contents (lazily allocated)
	blocks  []eraseBlock
	dies    []dieState
	rng     *sim.Rand
	flipRng *sim.Rand // separate stream so wear failures stay reproducible
	stats   Stats
}

// New returns a device with the given id and configuration.
func New(id string, cfg Config) (*Device, error) {
	if cfg.Capacity <= 0 || cfg.EraseBlockSize <= 0 || cfg.PageSize <= 0 || cfg.Dies <= 0 {
		return nil, fmt.Errorf("ssd: invalid config %+v", cfg)
	}
	if cfg.Capacity%int64(cfg.EraseBlockSize) != 0 {
		return nil, fmt.Errorf("ssd: capacity %d not a multiple of erase block %d", cfg.Capacity, cfg.EraseBlockSize)
	}
	if cfg.EraseBlockSize%cfg.PageSize != 0 {
		return nil, fmt.Errorf("ssd: erase block %d not a multiple of page %d", cfg.EraseBlockSize, cfg.PageSize)
	}
	if cfg.RandomWritePenalty < 1 {
		cfg.RandomWritePenalty = 1
	}
	if cfg.DieStripe <= 0 {
		cfg.DieStripe = 32 << 10
	}
	if cfg.DieStripe%cfg.PageSize != 0 {
		return nil, fmt.Errorf("ssd: die stripe %d not a multiple of page %d", cfg.DieStripe, cfg.PageSize)
	}
	nBlocks := cfg.Capacity / int64(cfg.EraseBlockSize)
	return &Device{
		cfg:     cfg,
		id:      id,
		data:    make(map[int64][]byte),
		blocks:  make([]eraseBlock, nBlocks),
		dies:    make([]dieState, cfg.Dies),
		rng:     sim.NewRand(cfg.Seed),
		flipRng: sim.NewRand(cfg.Seed*2654435761 + 0x5f1d), // independent stream
	}, nil
}

// ID returns the drive identifier.
func (d *Device) ID() string { return d.id }

// Config returns the drive's configuration.
func (d *Device) Config() Config { return d.cfg }

// Capacity returns usable bytes.
func (d *Device) Capacity() int64 { return d.cfg.Capacity }

// blockIndex returns the erase block containing off.
func (d *Device) blockIndex(off int64) int64 { return off / int64(d.cfg.EraseBlockSize) }

// dieFor maps a byte offset to the die that owns its stripe chunk.
func (d *Device) dieFor(off int64) int {
	return int((off / int64(d.cfg.DieStripe)) % int64(d.cfg.Dies))
}

// dieShares returns, per die index, how many bytes of [off, off+n) land on
// it. Dies service their shares in parallel.
func (d *Device) dieShares(off int64, n int) map[int]int64 {
	shares := make(map[int]int64, d.cfg.Dies)
	pos := off
	remaining := int64(n)
	for remaining > 0 {
		chunk := int64(d.cfg.DieStripe) - pos%int64(d.cfg.DieStripe)
		if chunk > remaining {
			chunk = remaining
		}
		shares[d.dieFor(pos)] += chunk
		pos += chunk
		remaining -= chunk
	}
	return shares
}

// pages returns how many pages an [off, off+n) access touches.
func (d *Device) pages(off int64, n int) int {
	if n == 0 {
		return 0
	}
	first := off / int64(d.cfg.PageSize)
	last := (off + int64(n) - 1) / int64(d.cfg.PageSize)
	return int(last-first) + 1
}

func (d *Device) transfer(n int) sim.Time {
	return sim.Time(int64(d.cfg.TransferPerKiB) * ((int64(n) + 1023) / 1024))
}

// ReadAt copies len(p) bytes at off into p. It returns the simulated
// completion time for a request issued at `at`. Reads of a failed drive or
// of a worn-out (bad) erase block fail.
func (d *Device) ReadAt(at sim.Time, p []byte, off int64) (sim.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return at, ErrFailed
	}
	if off < 0 || off+int64(len(p)) > d.cfg.Capacity {
		return at, ErrBounds
	}
	if len(p) == 0 {
		return at, nil
	}
	d.stats.HostBytesRead += int64(len(p))

	// Data copy, block by block.
	remaining := p
	pos := off
	for len(remaining) > 0 {
		bi := d.blockIndex(pos)
		if d.blocks[bi].bad {
			return at, ErrCorrupt
		}
		blockOff := pos % int64(d.cfg.EraseBlockSize)
		n := int64(d.cfg.EraseBlockSize) - blockOff
		if n > int64(len(remaining)) {
			n = int64(len(remaining))
		}
		if chunk, ok := d.data[bi]; ok {
			copy(remaining[:n], chunk[blockOff:])
		} else {
			for i := range remaining[:n] {
				remaining[i] = 0
			}
		}
		remaining = remaining[n:]
		pos += n
	}

	// Timing: each touched die serves its share in parallel; the op
	// completes when the slowest die plus the bus transfer finish.
	done := d.occupyRead(at, off, len(p))
	return done, nil
}

// WriteAt programs len(p) bytes at off. Programming a page that already
// holds data is a *random* write: the simplified FTL relocates it (extra
// latency, extra flash writes) rather than failing, matching how real
// consumer drives behave. Sequential appends within an erase block run at
// native cost. Returns the simulated completion time.
func (d *Device) WriteAt(at sim.Time, p []byte, off int64) (sim.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return at, ErrFailed
	}
	if off < 0 || off+int64(len(p)) > d.cfg.Capacity {
		return at, ErrBounds
	}
	if len(p) == 0 {
		return at, nil
	}
	d.stats.HostBytesWritten += int64(len(p))

	random := false
	remaining := p
	pos := off
	for len(remaining) > 0 {
		bi := d.blockIndex(pos)
		blockOff := pos % int64(d.cfg.EraseBlockSize)
		n := int64(d.cfg.EraseBlockSize) - blockOff
		if n > int64(len(remaining)) {
			n = int64(len(remaining))
		}
		b := &d.blocks[bi]
		if blockOff < b.written {
			// Overwrite of already-programmed pages: FTL relocation.
			random = true
			b.bad = false // FTL maps around previously bad pages on rewrite
		}
		chunk, ok := d.data[bi]
		if !ok {
			chunk = make([]byte, d.cfg.EraseBlockSize)
			d.data[bi] = chunk
		}
		copy(chunk[blockOff:], remaining[:n])
		if d.cfg.BitFlipRate > 0 && d.flipRng.Float64() < d.cfg.BitFlipRate {
			// Latent error: flip one bit somewhere in the bytes just
			// programmed into this block. Silent — the read path returns
			// the damaged data without ErrCorrupt.
			at := blockOff + int64(d.flipRng.Intn(int(n)))
			chunk[at] ^= 1 << (d.flipRng.Intn(8))
			d.stats.BitFlips++
		}
		if end := blockOff + n; end > b.written {
			b.written = end
		}
		remaining = remaining[n:]
		pos += n
	}

	penalty := 1
	flash := int64(len(p))
	if random {
		d.stats.RandomWrites++
		penalty = d.cfg.RandomWritePenalty
		flash *= int64(d.cfg.RandomWritePenalty)
		// Relocation erases: charge wear to the touched blocks.
		for bi := d.blockIndex(off); bi <= d.blockIndex(off+int64(len(p))-1); bi++ {
			d.wearBlock(bi)
		}
	}
	d.stats.FlashBytesWritten += flash

	done := d.occupyWrite(at, off, len(p), penalty)
	return done, nil
}

// Erase resets the erase block containing off (off must be block-aligned),
// charging one P/E cycle. Worn-out blocks may go bad.
func (d *Device) Erase(at sim.Time, off int64) (sim.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return at, ErrFailed
	}
	if off < 0 || off >= d.cfg.Capacity || off%int64(d.cfg.EraseBlockSize) != 0 {
		return at, ErrBounds
	}
	bi := d.blockIndex(off)
	delete(d.data, bi)
	d.blocks[bi].written = 0
	d.blocks[bi].bad = false
	d.stats.Erases++
	d.wearBlock(bi)

	// An erase block spans every die its chunks stripe across; the erase
	// stalls them all (real drives exhibit exactly these whole-drive
	// hiccups during erases, §2.1).
	done := at
	for die := range d.dieShares(off, d.cfg.EraseBlockSize) {
		start, gapFit := d.dieSchedule(die, at, d.cfg.EraseLatency)
		dieDone := start + d.cfg.EraseLatency
		if !gapFit {
			d.occupyDie(die, start, dieDone)
		}
		if dieDone > done {
			done = dieDone
		}
	}
	return done, nil
}

// wearBlock increments wear and maybe marks the block bad. Caller holds mu.
func (d *Device) wearBlock(bi int64) {
	b := &d.blocks[bi]
	b.wear++
	if b.wear > d.stats.MaxWear {
		d.stats.MaxWear = b.wear
	}
	if b.wear > d.cfg.PELimit && d.rng.Float64() < d.cfg.WearFailureProb {
		if !b.bad {
			b.bad = true
			d.stats.BadBlocks++
		}
	}
}

// dieSchedule picks the start time for an operation of the given service
// length on a die: immediately when the die is idle, in the idle gap before
// a future-scheduled busy window when the op fits there, and queued behind
// the window otherwise. Gap-fit ops do not alter the window.
func (d *Device) dieSchedule(die int, at, service sim.Time) (start sim.Time, gapFit bool) {
	ds := &d.dies[die]
	if at >= ds.busyUntil {
		return at, false
	}
	if at+service <= ds.busyFrom {
		return at, true
	}
	return ds.busyUntil, false
}

// occupyRead schedules a read: each touched die serves its share (one read
// service per touched die, in parallel); the op completes when the slowest
// die finishes plus the bus transfer. Contending with an ongoing program or
// erase is recorded as a stall.
func (d *Device) occupyRead(at sim.Time, off int64, n int) sim.Time {
	slowest := at
	stalled := false
	for die := range d.dieShares(off, n) {
		start, gapFit := d.dieSchedule(die, at, d.cfg.ReadLatency)
		if start > at {
			stalled = true
		}
		dieDone := start + d.cfg.ReadLatency
		if !gapFit {
			d.occupyDie(die, start, dieDone)
		}
		if dieDone > slowest {
			slowest = dieDone
		}
	}
	if stalled {
		d.stats.StalledReads++
	}
	return slowest + d.transfer(n)
}

// occupyWrite schedules a program: each die programs its share of pages in
// parallel, scaled by the FTL relocation penalty for random writes.
func (d *Device) occupyWrite(at sim.Time, off int64, n, penalty int) sim.Time {
	slowest := at
	for die, bytes := range d.dieShares(off, n) {
		pages := (bytes + int64(d.cfg.PageSize) - 1) / int64(d.cfg.PageSize)
		service := sim.Time(int64(d.cfg.ProgramLatency) * pages * int64(penalty))
		start, gapFit := d.dieSchedule(die, at, service)
		dieDone := start + service
		if !gapFit {
			d.occupyDie(die, start, dieDone)
		}
		if dieDone > slowest {
			slowest = dieDone
		}
	}
	return slowest + d.transfer(n)
}

// occupyDie extends or opens a die's busy period for [start, done). An
// operation that begins while the die is still busy (start ≤ busyUntil)
// continues the current period; otherwise a new period opens at start, so
// work scheduled in the future does not make the die look busy now.
func (d *Device) occupyDie(die int, start, done sim.Time) {
	ds := &d.dies[die]
	if start > ds.busyUntil {
		ds.busyFrom = start
	}
	if done > ds.busyUntil {
		ds.busyUntil = done
	}
}

// BusyRangeAt reports whether any die serving [off, off+n) is busy at time
// t — the §4.4 signal: a read aimed at those dies would stall behind an
// in-flight program or erase, so the scheduler reconstructs instead.
func (d *Device) BusyRangeAt(t sim.Time, off int64, n int) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for die := range d.dieShares(off, n) {
		ds := d.dies[die]
		if ds.busyFrom <= t && t < ds.busyUntil {
			return true
		}
	}
	return false
}

// BusyAt reports whether any die of the drive is busy at time t.
func (d *Device) BusyAt(t sim.Time) bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	for _, ds := range d.dies {
		if ds.busyFrom <= t && t < ds.busyUntil {
			return true
		}
	}
	return false
}

// Fail takes the drive offline (pulled from the shelf). All subsequent
// operations return ErrFailed until Revive. Data is preserved, as pulling a
// drive does not erase it.
func (d *Device) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// Revive brings a failed drive back online.
func (d *Device) Revive() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = false
}

// Failed reports whether the drive is offline.
func (d *Device) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// CorruptBlock marks the erase block containing off bad, simulating charge
// leakage on worn flash (§5.1). Reads will fail until it is erased.
func (d *Device) CorruptBlock(off int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	bi := d.blockIndex(off)
	if !d.blocks[bi].bad {
		d.blocks[bi].bad = true
		d.stats.BadBlocks++
	}
}

// FlipBit deterministically flips one bit of the byte at off — the test
// hook for injecting a single latent error at a known location. Like
// BitFlipRate damage, the flip is silent: reads succeed and return the
// damaged byte.
func (d *Device) FlipBit(off int64, bit uint) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if off < 0 || off >= d.cfg.Capacity {
		return
	}
	bi := d.blockIndex(off)
	chunk, ok := d.data[bi]
	if !ok {
		chunk = make([]byte, d.cfg.EraseBlockSize)
		d.data[bi] = chunk
	}
	chunk[off%int64(d.cfg.EraseBlockSize)] ^= 1 << (bit % 8)
	d.stats.BitFlips++
}

// Stats returns a snapshot of the drive's counters.
func (d *Device) Stats() Stats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stats
}

// Wear returns the P/E count of the erase block containing off.
func (d *Device) Wear(off int64) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.blocks[d.blockIndex(off)].wear
}

// WriteAmplification returns flash bytes written divided by host bytes
// written, the endurance metric for experiment E8.
func (d *Device) WriteAmplification() float64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.stats.HostBytesWritten == 0 {
		return 0
	}
	return float64(d.stats.FlashBytesWritten) / float64(d.stats.HostBytesWritten)
}
