package ssd

import (
	"bytes"
	"testing"
	"testing/quick"

	"purity/internal/sim"
)

func testConfig() Config {
	cfg := DefaultConfig()
	cfg.Capacity = 16 << 20
	cfg.EraseBlockSize = 256 << 10
	return cfg
}

func newDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New("ssd0", testConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestNewRejectsBadConfig(t *testing.T) {
	bad := []Config{
		{},
		{Capacity: 1 << 20, EraseBlockSize: 3000, PageSize: 4096, Dies: 4},    // cap not multiple
		{Capacity: 1 << 20, EraseBlockSize: 1 << 18, PageSize: 4095, Dies: 4}, // block not multiple of page
		{Capacity: -5, EraseBlockSize: 1 << 18, PageSize: 4096, Dies: 4},
	}
	for i, cfg := range bad {
		if _, err := New("x", cfg); err == nil {
			t.Errorf("config %d accepted", i)
		}
	}
}

func TestReadWriteRoundTrip(t *testing.T) {
	d := newDevice(t)
	data := make([]byte, 12345)
	sim.NewRand(1).Bytes(data)
	if _, err := d.WriteAt(0, data, 4096); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(0, got, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("round trip mismatch")
	}
}

func TestUnwrittenReadsZero(t *testing.T) {
	d := newDevice(t)
	got := make([]byte, 8192)
	got[0] = 0xff
	if _, err := d.ReadAt(0, got, 1<<20); err != nil {
		t.Fatal(err)
	}
	for i, b := range got {
		if b != 0 {
			t.Fatalf("unwritten byte %d = %#x", i, b)
		}
	}
}

func TestBounds(t *testing.T) {
	d := newDevice(t)
	buf := make([]byte, 10)
	if _, err := d.ReadAt(0, buf, d.Capacity()-5); err != ErrBounds {
		t.Fatalf("read past end: %v", err)
	}
	if _, err := d.WriteAt(0, buf, -1); err != ErrBounds {
		t.Fatalf("negative write: %v", err)
	}
	if _, err := d.Erase(0, 100); err != ErrBounds {
		t.Fatalf("unaligned erase: %v", err)
	}
}

func TestFailRevive(t *testing.T) {
	d := newDevice(t)
	d.Fail()
	if !d.Failed() {
		t.Fatal("Failed() false after Fail")
	}
	buf := make([]byte, 10)
	if _, err := d.ReadAt(0, buf, 0); err != ErrFailed {
		t.Fatalf("read on failed drive: %v", err)
	}
	if _, err := d.WriteAt(0, buf, 0); err != ErrFailed {
		t.Fatalf("write on failed drive: %v", err)
	}
	// Data survives a pull/reinsert.
	d.Revive()
	if _, err := d.WriteAt(0, []byte("persist"), 0); err != nil {
		t.Fatal(err)
	}
	d.Fail()
	d.Revive()
	got := make([]byte, 7)
	if _, err := d.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if string(got) != "persist" {
		t.Fatalf("data lost across pull: %q", got)
	}
}

func TestSequentialWriteLatency(t *testing.T) {
	d := newDevice(t)
	cfg := d.Config()
	data := make([]byte, cfg.PageSize)
	done, err := d.WriteAt(0, data, 0)
	if err != nil {
		t.Fatal(err)
	}
	// One page programmed plus a 4 KiB bus transfer.
	expected := cfg.ProgramLatency + sim.Time(int64(cfg.TransferPerKiB)*4)
	if done != expected {
		t.Fatalf("sequential page program done at %v, want %v", done, expected)
	}
}

func TestRandomWritePenalty(t *testing.T) {
	d := newDevice(t)
	cfg := d.Config()
	page := make([]byte, cfg.PageSize)

	// First write: sequential.
	if _, err := d.WriteAt(0, page, 0); err != nil {
		t.Fatal(err)
	}
	s0 := d.Stats()
	if s0.RandomWrites != 0 {
		t.Fatalf("first write counted as random")
	}
	// Overwrite the same page: random, penalized.
	if _, err := d.WriteAt(sim.Second, page, 0); err != nil {
		t.Fatal(err)
	}
	s1 := d.Stats()
	if s1.RandomWrites != 1 {
		t.Fatalf("RandomWrites = %d, want 1", s1.RandomWrites)
	}
	if s1.FlashBytesWritten <= s1.HostBytesWritten {
		t.Fatalf("no write amplification: flash=%d host=%d", s1.FlashBytesWritten, s1.HostBytesWritten)
	}
	if d.WriteAmplification() <= 1 {
		t.Fatalf("WriteAmplification = %v, want > 1", d.WriteAmplification())
	}
}

func TestAppendAfterEraseIsSequential(t *testing.T) {
	d := newDevice(t)
	cfg := d.Config()
	page := make([]byte, cfg.PageSize)
	if _, err := d.WriteAt(0, page, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.Erase(sim.Second, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.WriteAt(2*sim.Second, page, 0); err != nil {
		t.Fatal(err)
	}
	if s := d.Stats(); s.RandomWrites != 0 {
		t.Fatalf("append after erase counted as random (%d)", s.RandomWrites)
	}
}

func TestReadStallsBehindProgram(t *testing.T) {
	// A read issued to a die mid-program completes only after the program:
	// the latency spike Purity's scheduler exists to avoid.
	d := newDevice(t)
	cfg := d.Config()
	big := make([]byte, 4*cfg.PageSize)
	wDone, err := d.WriteAt(0, big, 0)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, cfg.PageSize)
	rDone, err := d.ReadAt(10*sim.Microsecond, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if rDone < wDone {
		t.Fatalf("read finished at %v, before program at %v", rDone, wDone)
	}
	if s := d.Stats(); s.StalledReads != 1 {
		t.Fatalf("StalledReads = %d, want 1", s.StalledReads)
	}
	if !d.BusyAt(10 * sim.Microsecond) {
		t.Fatal("BusyAt false during program")
	}
	if d.BusyAt(wDone + rDone) {
		t.Fatal("BusyAt true after all work done")
	}
}

func TestReadsOnSeparateDiesDontStall(t *testing.T) {
	d := newDevice(t)
	cfg := d.Config()
	// Write to die 0 (offset 0); read from die 1 (one DieStripe over): the
	// channels are independent, so no interference.
	page := make([]byte, cfg.PageSize)
	if _, err := d.WriteAt(0, page, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, cfg.PageSize)
	done, err := d.ReadAt(0, buf, int64(cfg.DieStripe))
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.ReadLatency + sim.Time(int64(cfg.TransferPerKiB)*4)
	if done != want {
		t.Fatalf("cross-die read done at %v, want %v", done, want)
	}
	// A read aimed at the writing die IS busy; BusyRangeAt sees exactly that.
	if !d.BusyRangeAt(sim.Microsecond, 0, cfg.PageSize) {
		t.Fatal("BusyRangeAt false on the programming die")
	}
	// Die 2 never saw work: idle.
	if d.BusyRangeAt(sim.Microsecond, 2*int64(cfg.DieStripe), cfg.PageSize) {
		t.Fatal("BusyRangeAt true on an idle die")
	}
}

func TestEraseWearAndFailure(t *testing.T) {
	cfg := testConfig()
	cfg.PELimit = 10
	cfg.WearFailureProb = 1.0 // deterministic failure past limit
	d, err := New("worn", cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.PELimit; i++ {
		if _, err := d.Erase(0, 0); err != nil {
			t.Fatal(err)
		}
	}
	if d.Wear(0) != cfg.PELimit {
		t.Fatalf("wear = %d, want %d", d.Wear(0), cfg.PELimit)
	}
	// One more erase pushes past the limit: block goes bad.
	if _, err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 16)
	if _, err := d.ReadAt(0, buf, 0); err != ErrCorrupt {
		t.Fatalf("read of worn-out block: %v, want ErrCorrupt", err)
	}
	// Erasing again clears the bad flag (fresh mapping), matching the
	// paper's observation that scrub+rewrite keeps worn flash usable.
	if _, err := d.Erase(0, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(0, buf, 0); err != ErrCorrupt {
		// Still past the limit with prob 1.0, so it goes bad again.
		t.Logf("block failed again as configured: %v", err)
	}
}

func TestCorruptBlockDetected(t *testing.T) {
	d := newDevice(t)
	if _, err := d.WriteAt(0, []byte("abc"), 0); err != nil {
		t.Fatal(err)
	}
	d.CorruptBlock(0)
	buf := make([]byte, 3)
	if _, err := d.ReadAt(0, buf, 0); err != ErrCorrupt {
		t.Fatalf("read of corrupted block: %v, want ErrCorrupt", err)
	}
	if d.Stats().BadBlocks != 1 {
		t.Fatalf("BadBlocks = %d, want 1", d.Stats().BadBlocks)
	}
}

func TestStatsAccounting(t *testing.T) {
	d := newDevice(t)
	data := make([]byte, 10000)
	if _, err := d.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5000)
	if _, err := d.ReadAt(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	s := d.Stats()
	if s.HostBytesWritten != 10000 || s.HostBytesRead != 5000 {
		t.Fatalf("stats = %+v", s)
	}
	if s.FlashBytesWritten != 10000 {
		t.Fatalf("sequential write amplified: %d", s.FlashBytesWritten)
	}
}

func TestRoundTripProperty(t *testing.T) {
	d := newDevice(t)
	capacity := d.Capacity()
	f := func(seed uint64, offRaw uint32, lenRaw uint16) bool {
		n := int(lenRaw)%8192 + 1
		off := int64(offRaw) % (capacity - int64(n))
		data := make([]byte, n)
		sim.NewRand(seed).Bytes(data)
		if _, err := d.WriteAt(0, data, off); err != nil {
			return false
		}
		got := make([]byte, n)
		if _, err := d.ReadAt(0, got, off); err != nil {
			return false
		}
		return bytes.Equal(got, data)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestLatencyMonotonicity(t *testing.T) {
	// Completion times never precede issue times, and per-die busy times
	// only move forward.
	d := newDevice(t)
	r := sim.NewRand(3)
	page := make([]byte, d.Config().PageSize)
	now := sim.Time(0)
	for i := 0; i < 200; i++ {
		off := int64(r.Intn(60)) * int64(d.Config().PageSize)
		var done sim.Time
		var err error
		if r.Intn(2) == 0 {
			done, err = d.WriteAt(now, page, off)
		} else {
			done, err = d.ReadAt(now, page, off)
		}
		if err != nil {
			t.Fatal(err)
		}
		if done < now {
			t.Fatalf("op %d completed at %v before issue at %v", i, done, now)
		}
		now += sim.Time(r.Intn(int(sim.Millisecond)))
	}
}

func BenchmarkWrite128KiB(b *testing.B) {
	d, _ := New("bench", DefaultConfig())
	data := make([]byte, 128<<10)
	b.SetBytes(int64(len(data)))
	var now sim.Time
	for i := 0; i < b.N; i++ {
		off := (int64(i) * int64(len(data))) % (d.Capacity() - int64(len(data)))
		off -= off % int64(len(data))
		var err error
		now, err = d.WriteAt(now, data, off)
		if err != nil {
			b.Fatal(err)
		}
	}
}

func TestFlipBitIsSilentAndCounted(t *testing.T) {
	d := newDevice(t)
	data := make([]byte, 8192)
	sim.NewRand(5).Bytes(data)
	if _, err := d.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	d.FlipBit(100, 3)
	got := make([]byte, len(data))
	if _, err := d.ReadAt(0, got, 0); err != nil {
		t.Fatalf("flip must be silent, read returned %v", err)
	}
	for i := range got {
		want := data[i]
		if i == 100 {
			want ^= 1 << 3
		}
		if got[i] != want {
			t.Fatalf("byte %d = %#x, want %#x", i, got[i], want)
		}
	}
	if n := d.Stats().BitFlips; n != 1 {
		t.Fatalf("BitFlips = %d, want 1", n)
	}
	// Rewriting the range clears the damage — the repair path scrub uses.
	if _, err := d.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := d.ReadAt(0, got, 0); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("rewrite did not clear the flipped bit")
	}
}

func TestBitFlipRateInjectsLatentErrors(t *testing.T) {
	cfg := testConfig()
	cfg.BitFlipRate = 1.0 // every program flips one bit in the touched block
	d, err := New("flaky", cfg)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	sim.NewRand(6).Bytes(data)
	if _, err := d.WriteAt(0, data, 0); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(data))
	if _, err := d.ReadAt(0, got, 0); err != nil {
		t.Fatalf("latent error must be silent, read returned %v", err)
	}
	diff := 0
	for i := range got {
		for b := got[i] ^ data[i]; b != 0; b &= b - 1 {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("%d bits differ, want exactly 1", diff)
	}
	if n := d.Stats().BitFlips; n != 1 {
		t.Fatalf("BitFlips = %d, want 1", n)
	}
}
