// Package chaos is a deterministic network-fault injector: a wrapping
// net.Conn / net.Listener that injects the failure modes a block front end
// must survive — connection resets, torn (partial) frame writes, delayed
// delivery, stalls, and blackholes where bytes simply stop arriving.
//
// Like crashpoint, it is seeded and deterministic: every connection gets
// its own rng stream derived from (Config.Seed, connection ordinal), so a
// given connection makes the same fault decisions at the same byte-stream
// positions on every run. (Cross-connection interleaving still follows the
// scheduler, as it does for any concurrent test; the per-connection fault
// schedule is what reproduces.)
//
// Faults fire on the wrapped side's I/O calls:
//
//   - Write: Reset (close before writing), Tear (write a strict prefix of
//     the buffer, then close — the peer sees a frame cut mid-body), Delay.
//   - Read: Delay, Stall (long sleep, then deliver), Blackhole (bytes never
//     arrive; the call blocks until the connection closes or its read
//     deadline fires).
//
// All probabilities are per-call. A zero Config injects nothing, so a rig
// can be built unconditionally and armed by flipping the config.
package chaos

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"purity/internal/sim"
	"purity/internal/telemetry"
)

// ErrInjected marks a failure manufactured by the injector (resets and torn
// writes). errors.Is(err, ErrInjected) distinguishes injected faults from
// real ones in assertions.
var ErrInjected = errors.New("chaos: injected fault")

// Config arms the injector. Probabilities are per Read/Write call in [0,1].
type Config struct {
	Seed uint64

	// Write-side faults.
	ResetProb float64 // close the connection instead of writing
	TearProb  float64 // write a strict prefix, then close

	// Read-side faults.
	DelayProb     float64       // sleep Delay, then proceed
	Delay         time.Duration //
	StallProb     float64       // sleep Stall, then proceed
	Stall         time.Duration //
	BlackholeProb float64       // block until close or read deadline
}

// Stats counts injected faults, for experiment reporting.
type Stats struct {
	Conns      telemetry.Counter
	Resets     telemetry.Counter
	TornWrites telemetry.Counter
	Delays     telemetry.Counter
	Stalls     telemetry.Counter
	Blackholes telemetry.Counter
}

// Summary renders the counters on one line.
func (s *Stats) Summary() string {
	return fmt.Sprintf("conns=%d resets=%d torn=%d delays=%d stalls=%d blackholes=%d",
		s.Conns.Load(), s.Resets.Load(), s.TornWrites.Load(),
		s.Delays.Load(), s.Stalls.Load(), s.Blackholes.Load())
}

// Injector hands out fault-wrapped connections and listeners.
type Injector struct {
	mu    sync.Mutex
	cfg   Config
	conns uint64
	stats Stats
}

// New returns an injector armed with cfg.
func New(cfg Config) *Injector {
	return &Injector{cfg: cfg}
}

// Stats exposes the fault counters.
func (i *Injector) Stats() *Stats { return &i.stats }

// SetConfig swaps the fault schedule (e.g. arm faults only for a test's
// middle phase). Connections already handed out keep their old config.
func (i *Injector) SetConfig(cfg Config) {
	i.mu.Lock()
	i.cfg = cfg
	i.mu.Unlock()
}

// Conn wraps one connection with its own deterministic fault stream.
func (i *Injector) Conn(c net.Conn) net.Conn {
	i.mu.Lock()
	i.conns++
	n := i.conns
	cfg := i.cfg
	i.mu.Unlock()
	i.stats.Conns.Inc()
	return &conn{
		Conn:    c,
		cfg:     cfg,
		stats:   &i.stats,
		rng:     sim.NewRand(cfg.Seed*0x9e3779b97f4a7c15 + n),
		closeCh: make(chan struct{}),
	}
}

// Dial connects and wraps; the injector's dial is what an HA client plugs
// in to put its own connections under chaos.
func (i *Injector) Dial(network, addr string) (net.Conn, error) {
	c, err := net.Dial(network, addr)
	if err != nil {
		return nil, err
	}
	return i.Conn(c), nil
}

// Listener wraps a listener so every accepted connection is under chaos.
func (i *Injector) Listener(l net.Listener) net.Listener {
	return &listener{Listener: l, inj: i}
}

type listener struct {
	net.Listener
	inj *Injector
}

func (l *listener) Accept() (net.Conn, error) {
	c, err := l.Listener.Accept()
	if err != nil {
		return nil, err
	}
	return l.inj.Conn(c), nil
}

// conn is one fault-wrapped connection.
type conn struct {
	net.Conn
	cfg   Config
	stats *Stats

	mu  sync.Mutex // guards rng (Read and Write may race)
	rng *sim.Rand

	dmu          sync.Mutex // guards readDeadline
	readDeadline time.Time

	closeOnce sync.Once
	closeCh   chan struct{}
}

// rollLocked draws one uniform variate from the connection's fault stream.
// Caller holds mu.
func (c *conn) rollLocked() float64 { return c.rng.Float64() }

// decide draws the fault decision for one call: an index into the
// cumulative probability ladder, or -1 for no fault.
func (c *conn) decide(probs ...float64) int {
	c.mu.Lock()
	v := c.rollLocked()
	c.mu.Unlock()
	cum := 0.0
	for i, p := range probs {
		cum += p
		if v < cum {
			return i
		}
	}
	return -1
}

// fraction draws a uniform fraction for torn-write prefix sizing.
func (c *conn) fraction() float64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.rollLocked()
}

func (c *conn) Close() error {
	c.closeOnce.Do(func() { close(c.closeCh) })
	return c.Conn.Close()
}

func (c *conn) SetDeadline(t time.Time) error {
	c.dmu.Lock()
	c.readDeadline = t
	c.dmu.Unlock()
	return c.Conn.SetDeadline(t)
}

func (c *conn) SetReadDeadline(t time.Time) error {
	c.dmu.Lock()
	c.readDeadline = t
	c.dmu.Unlock()
	return c.Conn.SetReadDeadline(t)
}

func (c *conn) Write(b []byte) (int, error) {
	switch c.decide(c.cfg.ResetProb, c.cfg.TearProb) {
	case 0: // reset
		c.stats.Resets.Inc()
		//lint:ignore errdrop the injected reset is the error this path exists to produce; the close error is noise
		c.Close()
		return 0, fmt.Errorf("%w: connection reset before write", ErrInjected)
	case 1: // torn write
		if len(b) > 1 {
			n := 1 + int(c.fraction()*float64(len(b)-1))
			if n >= len(b) {
				n = len(b) - 1
			}
			c.stats.TornWrites.Inc()
			wrote, err := c.Conn.Write(b[:n])
			//lint:ignore errdrop the torn write is the error this path exists to produce; the close error is noise
			c.Close()
			if err != nil {
				return wrote, err
			}
			return wrote, fmt.Errorf("%w: write torn at %d/%d bytes", ErrInjected, wrote, len(b))
		}
	}
	return c.Conn.Write(b)
}

func (c *conn) Read(b []byte) (int, error) {
	switch c.decide(c.cfg.BlackholeProb, c.cfg.StallProb, c.cfg.DelayProb) {
	case 0: // blackhole: bytes never arrive
		c.stats.Blackholes.Inc()
		c.dmu.Lock()
		deadline := c.readDeadline
		c.dmu.Unlock()
		var timeout <-chan time.Time
		if !deadline.IsZero() {
			t := time.NewTimer(time.Until(deadline))
			defer t.Stop()
			timeout = t.C
		}
		select {
		case <-c.closeCh:
			return 0, fmt.Errorf("%w: blackholed connection closed", ErrInjected)
		case <-timeout:
			return 0, os.ErrDeadlineExceeded
		}
	case 1: // stall, then deliver
		c.stats.Stalls.Inc()
		c.sleep(c.cfg.Stall)
	case 2: // small delay
		c.stats.Delays.Inc()
		c.sleep(c.cfg.Delay)
	}
	return c.Conn.Read(b)
}

// sleep waits d, cut short if the connection closes.
func (c *conn) sleep(d time.Duration) {
	if d <= 0 {
		return
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
	case <-c.closeCh:
	}
}
