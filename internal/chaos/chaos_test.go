package chaos

import (
	"errors"
	"io"
	"net"
	"os"
	"testing"
	"time"
)

// pipePair returns two ends of a loopback TCP connection, the client end
// wrapped by the injector.
func pipePair(t *testing.T, inj *Injector) (net.Conn, net.Conn) {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	type acc struct {
		c   net.Conn
		err error
	}
	ch := make(chan acc, 1)
	go func() {
		c, err := l.Accept()
		ch <- acc{c, err}
	}()
	raw, err := net.Dial("tcp", l.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	a := <-ch
	if a.err != nil {
		t.Fatal(a.err)
	}
	t.Cleanup(func() { raw.Close(); a.c.Close() })
	return inj.Conn(raw), a.c
}

// With every probability zero the wrapper is a transparent pipe.
func TestZeroConfigIsTransparent(t *testing.T) {
	inj := New(Config{Seed: 1})
	cl, sv := pipePair(t, inj)
	msg := []byte("hello through chaos")
	if _, err := cl.Write(msg); err != nil {
		t.Fatal(err)
	}
	got := make([]byte, len(msg))
	if _, err := io.ReadFull(sv, got); err != nil {
		t.Fatal(err)
	}
	if string(got) != string(msg) {
		t.Fatalf("got %q", got)
	}
	if s := inj.Stats(); s.Resets.Load()+s.TornWrites.Load()+s.Blackholes.Load() != 0 {
		t.Fatalf("faults injected at zero config: %s", s.Summary())
	}
}

// A torn write delivers a strict prefix and then kills the connection: the
// peer sees some bytes, then EOF — a frame cut mid-body.
func TestTornWrite(t *testing.T) {
	inj := New(Config{Seed: 3, TearProb: 1})
	cl, sv := pipePair(t, inj)
	msg := make([]byte, 4096)
	n, err := cl.Write(msg)
	if !errors.Is(err, ErrInjected) && err == nil {
		t.Fatalf("torn write returned n=%d err=%v", n, err)
	}
	if n <= 0 || n >= len(msg) {
		t.Fatalf("torn write delivered %d of %d bytes (want strict prefix)", n, len(msg))
	}
	got, rerr := io.ReadAll(sv)
	if len(got) != n {
		t.Fatalf("peer saw %d bytes, writer claims %d (readall err %v)", len(got), n, rerr)
	}
	if inj.Stats().TornWrites.Load() != 1 {
		t.Fatalf("TornWrites = %d", inj.Stats().TornWrites.Load())
	}
}

// A reset closes before any byte leaves.
func TestReset(t *testing.T) {
	inj := New(Config{Seed: 5, ResetProb: 1})
	cl, sv := pipePair(t, inj)
	if _, err := cl.Write([]byte("doomed")); !errors.Is(err, ErrInjected) {
		t.Fatalf("reset write: %v", err)
	}
	if got, _ := io.ReadAll(sv); len(got) != 0 {
		t.Fatalf("peer saw %d bytes after reset", len(got))
	}
	if inj.Stats().Resets.Load() != 1 {
		t.Fatalf("Resets = %d", inj.Stats().Resets.Load())
	}
}

// A blackholed read blocks until the read deadline fires — the timeout
// error is the standard net deadline error, so caller-side deadline logic
// needs no special case.
func TestBlackholeHonorsReadDeadline(t *testing.T) {
	inj := New(Config{Seed: 7, BlackholeProb: 1})
	cl, sv := pipePair(t, inj)
	// Real bytes are on the wire; the blackhole swallows them anyway.
	if _, err := sv.Write([]byte("lost")); err != nil {
		t.Fatal(err)
	}
	if err := cl.SetReadDeadline(time.Now().Add(30 * time.Millisecond)); err != nil {
		t.Fatal(err)
	}
	start := time.Now()
	_, err := cl.Read(make([]byte, 16))
	if !errors.Is(err, os.ErrDeadlineExceeded) {
		t.Fatalf("blackholed read: %v", err)
	}
	var ne net.Error
	if !errors.As(err, &ne) || !ne.Timeout() {
		t.Fatalf("blackhole error is not a net timeout: %v", err)
	}
	if time.Since(start) < 20*time.Millisecond {
		t.Fatal("blackhole returned before the deadline")
	}
	if inj.Stats().Blackholes.Load() != 1 {
		t.Fatalf("Blackholes = %d", inj.Stats().Blackholes.Load())
	}
}

// A blackholed read with no deadline unblocks when the connection closes.
func TestBlackholeUnblocksOnClose(t *testing.T) {
	inj := New(Config{Seed: 9, BlackholeProb: 1})
	cl, _ := pipePair(t, inj)
	done := make(chan error, 1)
	go func() {
		_, err := cl.Read(make([]byte, 16))
		done <- err
	}()
	time.Sleep(10 * time.Millisecond)
	if err := cl.Close(); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-done:
		if !errors.Is(err, ErrInjected) {
			t.Fatalf("blackholed read after close: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("blackholed read did not unblock on close")
	}
}

// Same seed, same call sequence → identical fault decisions: the injector
// is reproducible the way crashpoint sweeps are.
func TestDeterministicPerConnStream(t *testing.T) {
	run := func() []int {
		inj := New(Config{Seed: 11, ResetProb: 0.2, TearProb: 0.2})
		var outcomes []int
		for conn := 0; conn < 4; conn++ {
			cl, _ := pipePair(t, inj)
			for op := 0; op < 8; op++ {
				_, err := cl.Write([]byte("0123456789abcdef"))
				switch {
				case err == nil:
					outcomes = append(outcomes, 0)
				case errors.Is(err, ErrInjected):
					outcomes = append(outcomes, 1)
				default:
					// Post-fault writes on a closed conn.
					outcomes = append(outcomes, 2)
				}
			}
		}
		return outcomes
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("lengths differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("decision %d differs: %d vs %d", i, a[i], b[i])
		}
	}
}

// The listener wrapper puts accepted connections under chaos too.
func TestListenerWrap(t *testing.T) {
	inj := New(Config{Seed: 13, ResetProb: 1})
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := inj.Listener(inner)
	defer l.Close()
	go func() {
		c, err := net.Dial("tcp", inner.Addr().String())
		if err == nil {
			//lint:ignore errdrop test peer reads to EOF and hangs up; nothing to assert on its side
			c.Read(make([]byte, 1))
			c.Close()
		}
	}()
	sc, err := l.Accept()
	if err != nil {
		t.Fatal(err)
	}
	defer sc.Close()
	if _, err := sc.Write([]byte("x")); !errors.Is(err, ErrInjected) {
		t.Fatalf("accepted conn not under chaos: %v", err)
	}
}
