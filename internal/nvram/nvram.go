// Package nvram models the shelf NVRAM device Purity commits writes to
// before acknowledging them (§4.1–4.2 of the paper). The production part is
// an SLC flash device with bounded latency and a very high P/E rating,
// living in the shelf so that controllers stay stateless: after a controller
// failure the survivor replays the NVRAM log.
//
// The model is an append-only record log with fixed-plus-per-byte persist
// latency, bounded capacity, and CRC-framed records so torn or corrupted
// records are detected at replay.
package nvram

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sync"

	"purity/internal/sim"
)

// Config describes one NVRAM device.
type Config struct {
	Capacity       int64    // bytes of log space
	PersistLatency sim.Time // fixed per-append cost
	PerByte        sim.Time // additional cost per byte appended
}

// DefaultConfig returns the scaled-down device used by tests and benchmarks.
// Latency is far below the SSDs' program latency, matching the SLC part the
// paper describes.
func DefaultConfig() Config {
	return Config{
		Capacity:       32 << 20,
		PersistLatency: 10 * sim.Microsecond,
		PerByte:        2, // 2 ns/B ≈ 500 MB/s per device
	}
}

// Errors returned by Device.
var (
	ErrFull     = errors.New("nvram: log full")
	ErrTooLarge = errors.New("nvram: record exceeds capacity")
	ErrFailed   = errors.New("nvram: device failed")
)

// LSN identifies a record in the log. LSNs are dense and increase by one per
// append; they are not byte offsets.
type LSN uint64

// Record is a replayed log record.
type Record struct {
	LSN     LSN
	Payload []byte
}

const recordOverhead = 8 // uint32 length + uint32 crc

// Device is one NVRAM log. It is dual-ported: both controllers hold a
// reference and the survivor reads it during failover. Methods are safe for
// concurrent use.
type Device struct {
	cfg Config

	mu      sync.Mutex
	failed  bool
	records [][]byte // live records, records[0] has LSN base
	base    LSN
	used    int64
	busy    sim.Time // device is serial: appends queue
	appends int64
}

// New returns an empty device.
func New(cfg Config) (*Device, error) {
	if cfg.Capacity <= 0 {
		return nil, fmt.Errorf("nvram: invalid capacity %d", cfg.Capacity)
	}
	return &Device{cfg: cfg}, nil
}

// Append persists payload as one record, returning its LSN and the simulated
// completion time. The payload is copied. Append fails with ErrFull when the
// log has no room; callers must Release old records (after flushing them to
// segments) to make space.
func (d *Device) Append(at sim.Time, payload []byte) (LSN, sim.Time, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if d.failed {
		return 0, at, ErrFailed
	}
	need := int64(len(payload)) + recordOverhead
	if need > d.cfg.Capacity {
		return 0, at, ErrTooLarge
	}
	if d.used+need > d.cfg.Capacity {
		return 0, at, ErrFull
	}
	d.records = append(d.records, append([]byte(nil), payload...))
	d.used += need
	d.appends++
	lsn := d.base + LSN(len(d.records)-1)

	start := sim.Max(at, d.busy)
	done := start + d.cfg.PersistLatency + sim.Time(int64(d.cfg.PerByte)*int64(len(payload)))
	d.busy = done
	return lsn, done, nil
}

// Release discards all records with LSN < upTo, freeing their space. It is
// idempotent; releasing beyond the head is an error.
func (d *Device) Release(upTo LSN) error {
	d.mu.Lock()
	defer d.mu.Unlock()
	if upTo <= d.base {
		return nil
	}
	head := d.base + LSN(len(d.records))
	if upTo > head {
		return fmt.Errorf("nvram: release %d beyond head %d", upTo, head)
	}
	n := int(upTo - d.base)
	for _, r := range d.records[:n] {
		d.used -= int64(len(r)) + recordOverhead
	}
	d.records = append([][]byte(nil), d.records[n:]...)
	d.base = upTo
	return nil
}

// Records returns a copy of all live records in LSN order. Recovery replays
// these; because all Purity tuples are immutable facts, replaying records
// that were already flushed to segments is harmless (§4.3).
func (d *Device) Records() []Record {
	d.mu.Lock()
	defer d.mu.Unlock()
	out := make([]Record, len(d.records))
	for i, r := range d.records {
		out[i] = Record{LSN: d.base + LSN(i), Payload: append([]byte(nil), r...)}
	}
	return out
}

// Head returns the LSN the next append will receive.
func (d *Device) Head() LSN {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.base + LSN(len(d.records))
}

// Base returns the LSN of the oldest live record.
func (d *Device) Base() LSN {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.base
}

// Used returns the bytes of log space currently occupied.
func (d *Device) Used() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.used
}

// Capacity returns the configured log capacity.
func (d *Device) Capacity() int64 { return d.cfg.Capacity }

// Appends returns the lifetime append count.
func (d *Device) Appends() int64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.appends
}

// Fail takes the device offline: appends return ErrFailed until Revive. The
// log contents are preserved (losing an NVRAM device does not scramble its
// flash), but the commit path must stop relying on it — the redundant pair
// exists exactly for this.
func (d *Device) Fail() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = true
}

// Revive brings a failed device back online.
func (d *Device) Revive() {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.failed = false
}

// Failed reports whether the device is offline.
func (d *Device) Failed() bool {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// Marshal serializes the live log into a flat image with per-record CRC
// framing. Unmarshal (on a fresh device) restores it, skipping torn or
// corrupt trailing records. This pair exists for crash-injection tests: a
// crash is modelled as Marshal, optional truncation, then Unmarshal.
func (d *Device) Marshal() []byte {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []byte
	out = binary.LittleEndian.AppendUint64(out, uint64(d.base))
	for _, r := range d.records {
		out = binary.LittleEndian.AppendUint32(out, uint32(len(r)))
		out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(r))
		out = append(out, r...)
	}
	return out
}

// TornTail simulates a power loss that tore the in-flight trailing record:
// the device re-reads its own marshalled image with the last few bytes
// missing, so the final record fails its length framing and is dropped at
// the CRC/framing scan, exactly as a real torn append would be. Returns the
// number of records that survived. A device with no records is unchanged.
func (d *Device) TornTail() int {
	img := d.Marshal()
	if len(img) <= 8 {
		return 0
	}
	cut := 4
	if cut > len(img)-8 {
		cut = len(img) - 8
	}
	n, _ := d.Unmarshal(img[:len(img)-cut])
	return n
}

// CorruptTail simulates a crash that left the trailing record's bytes
// present but scrambled (a partial program of the last page): the last
// payload byte is flipped, so the record fails its CRC at replay and is
// dropped along with everything after it. Returns the surviving record
// count. A device with no records is unchanged.
func (d *Device) CorruptTail() int {
	img := d.Marshal()
	if len(img) <= 8 {
		return 0
	}
	img[len(img)-1] ^= 0xFF
	n, _ := d.Unmarshal(img)
	return n
}

// Unmarshal replaces the device contents with the image produced by
// Marshal. It stops at the first torn or corrupt record, returning how many
// records survived.
func (d *Device) Unmarshal(img []byte) (int, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if len(img) < 8 {
		return 0, errors.New("nvram: image too short")
	}
	d.base = LSN(binary.LittleEndian.Uint64(img))
	d.records = nil
	d.used = 0
	pos := 8
	for pos+recordOverhead <= len(img) {
		n := int(binary.LittleEndian.Uint32(img[pos:]))
		crc := binary.LittleEndian.Uint32(img[pos+4:])
		if pos+recordOverhead+n > len(img) {
			break // torn tail
		}
		payload := img[pos+recordOverhead : pos+recordOverhead+n]
		if crc32.ChecksumIEEE(payload) != crc {
			break // corrupt record: everything after is suspect
		}
		d.records = append(d.records, append([]byte(nil), payload...))
		d.used += int64(n) + recordOverhead
		pos += recordOverhead + n
	}
	return len(d.records), nil
}
