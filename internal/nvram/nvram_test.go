package nvram

import (
	"bytes"
	"testing"
	"testing/quick"

	"purity/internal/sim"
)

func newDevice(t *testing.T) *Device {
	t.Helper()
	d, err := New(DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func TestAppendAssignsDenseLSNs(t *testing.T) {
	d := newDevice(t)
	for i := 0; i < 10; i++ {
		lsn, _, err := d.Append(0, []byte{byte(i)})
		if err != nil {
			t.Fatal(err)
		}
		if lsn != LSN(i) {
			t.Fatalf("append %d got LSN %d", i, lsn)
		}
	}
	if d.Head() != 10 {
		t.Fatalf("Head = %d, want 10", d.Head())
	}
}

func TestAppendLatency(t *testing.T) {
	d := newDevice(t)
	cfg := DefaultConfig()
	payload := make([]byte, 1000)
	_, done, err := d.Append(0, payload)
	if err != nil {
		t.Fatal(err)
	}
	want := cfg.PersistLatency + sim.Time(int64(cfg.PerByte)*1000)
	if done != want {
		t.Fatalf("done = %v, want %v", done, want)
	}
	// Appends serialize: a second append issued at time 0 queues.
	_, done2, err := d.Append(0, payload)
	if err != nil {
		t.Fatal(err)
	}
	if done2 != 2*want {
		t.Fatalf("queued append done = %v, want %v", done2, 2*want)
	}
}

func TestRecordsRoundTrip(t *testing.T) {
	d := newDevice(t)
	payloads := [][]byte{[]byte("alpha"), []byte("beta"), {}, []byte("gamma")}
	for _, p := range payloads {
		if _, _, err := d.Append(0, p); err != nil {
			t.Fatal(err)
		}
	}
	recs := d.Records()
	if len(recs) != len(payloads) {
		t.Fatalf("got %d records, want %d", len(recs), len(payloads))
	}
	for i, r := range recs {
		if r.LSN != LSN(i) || !bytes.Equal(r.Payload, payloads[i]) {
			t.Fatalf("record %d = %+v", i, r)
		}
	}
	// Records are copies: mutating the returned slice must not corrupt the log.
	if len(recs[0].Payload) > 0 {
		recs[0].Payload[0] = 'X'
		if got := d.Records()[0].Payload[0]; got != 'a' {
			t.Fatal("Records returned aliased memory")
		}
	}
}

func TestRelease(t *testing.T) {
	d := newDevice(t)
	for i := 0; i < 5; i++ {
		if _, _, err := d.Append(0, []byte("0123456789")); err != nil {
			t.Fatal(err)
		}
	}
	used := d.Used()
	if err := d.Release(3); err != nil {
		t.Fatal(err)
	}
	if d.Base() != 3 {
		t.Fatalf("Base = %d, want 3", d.Base())
	}
	if d.Used() >= used {
		t.Fatal("Release freed no space")
	}
	recs := d.Records()
	if len(recs) != 2 || recs[0].LSN != 3 {
		t.Fatalf("records after release: %+v", recs)
	}
	// Idempotent: releasing the same point again is fine.
	if err := d.Release(3); err != nil {
		t.Fatal(err)
	}
	// Beyond head: error.
	if err := d.Release(100); err == nil {
		t.Fatal("release beyond head accepted")
	}
}

func TestFullAndRelease(t *testing.T) {
	cfg := DefaultConfig()
	cfg.Capacity = 100
	d, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	// Each record costs 10 + 8 = 18 bytes: five fit, the sixth doesn't.
	payload := make([]byte, 10)
	for i := 0; i < 5; i++ {
		if _, _, err := d.Append(0, payload); err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
	}
	if _, _, err := d.Append(0, payload); err != ErrFull {
		t.Fatalf("append to full log: %v, want ErrFull", err)
	}
	if err := d.Release(2); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.Append(0, payload); err != nil {
		t.Fatalf("append after release: %v", err)
	}
	// A record bigger than the whole device is rejected outright.
	if _, _, err := d.Append(0, make([]byte, 200)); err != ErrTooLarge {
		t.Fatalf("oversized append: %v, want ErrTooLarge", err)
	}
}

func TestMarshalUnmarshalRoundTrip(t *testing.T) {
	d := newDevice(t)
	for i := 0; i < 20; i++ {
		p := bytes.Repeat([]byte{byte(i)}, i)
		if _, _, err := d.Append(0, p); err != nil {
			t.Fatal(err)
		}
	}
	_ = d.Release(5)
	img := d.Marshal()

	d2 := newDevice(t)
	n, err := d2.Unmarshal(img)
	if err != nil {
		t.Fatal(err)
	}
	if n != 15 {
		t.Fatalf("recovered %d records, want 15", n)
	}
	a, b := d.Records(), d2.Records()
	for i := range a {
		if a[i].LSN != b[i].LSN || !bytes.Equal(a[i].Payload, b[i].Payload) {
			t.Fatalf("record %d mismatch after round trip", i)
		}
	}
}

func TestUnmarshalTornTail(t *testing.T) {
	d := newDevice(t)
	for i := 0; i < 10; i++ {
		if _, _, err := d.Append(0, []byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	img := d.Marshal()
	// Truncate mid-record: only complete records survive.
	d2 := newDevice(t)
	n, err := d2.Unmarshal(img[:len(img)-7])
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("recovered %d records from torn image, want 9", n)
	}
}

func TestUnmarshalCorruptRecordStopsReplay(t *testing.T) {
	d := newDevice(t)
	for i := 0; i < 10; i++ {
		if _, _, err := d.Append(0, []byte("payload-payload")); err != nil {
			t.Fatal(err)
		}
	}
	img := d.Marshal()
	// Flip a byte inside record 4's payload (after 8-byte base header).
	recSize := 8 + 15
	img[8+4*recSize+recordOverhead+3] ^= 0xff
	d2 := newDevice(t)
	n, err := d2.Unmarshal(img)
	if err != nil {
		t.Fatal(err)
	}
	if n != 4 {
		t.Fatalf("recovered %d records, want 4 (stop at corruption)", n)
	}
}

func TestUnmarshalGarbage(t *testing.T) {
	d := newDevice(t)
	if _, err := d.Unmarshal(nil); err == nil {
		t.Fatal("nil image accepted")
	}
	if _, err := d.Unmarshal([]byte{1, 2, 3}); err == nil {
		t.Fatal("short image accepted")
	}
}

func TestAppendReleaseProperty(t *testing.T) {
	// Property: used space is always the sum of live record costs, and
	// Head - Base always equals the live record count.
	f := func(sizes []uint8, releaseAt uint8) bool {
		cfg := DefaultConfig()
		d, _ := New(cfg)
		for _, s := range sizes {
			if _, _, err := d.Append(0, make([]byte, int(s))); err != nil {
				return false
			}
		}
		r := LSN(releaseAt)
		if r > d.Head() {
			r = d.Head()
		}
		if err := d.Release(r); err != nil {
			return false
		}
		var want int64
		for i := int(r); i < len(sizes); i++ {
			want += int64(sizes[i]) + recordOverhead
		}
		return d.Used() == want && int(d.Head()-d.Base()) == len(sizes)-int(r)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}
