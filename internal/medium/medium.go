// Package medium implements the resolution algorithm over Purity's medium
// table (§3.4, §4.5, Figure 6 of the paper). Mediums are coarse-grained
// virtual containers: every user-visible block is addressed by
// (medium, offset), and the medium table maps un-overwritten ranges of one
// medium onto another. Snapshots and clones are O(1) medium-table inserts;
// reads chase the chain, which the garbage collector keeps at most three
// cblock accesses deep.
package medium

import (
	"fmt"

	"purity/internal/relation"
	"purity/internal/sim"
)

// Lookup is the resolver's window onto the metadata pyramids. The engine
// implements it with range queries over the address map and medium table
// relations.
//
// Address-map entries are ranges that may overlap (a small overwrite lands
// inside an older, larger cblock's range); the winner for any sector is the
// covering entry with the highest sequence number, which AddrCovering must
// return. Entries span at most MaxCBlockSectors sectors, so implementations
// only need to examine keys in (sector-MaxCBlockSectors, sector].
type Lookup interface {
	// AddrCovering returns the newest (highest-seq) entry whose sector
	// range covers the given sector.
	AddrCovering(at sim.Time, medium, sector uint64) (relation.AddrRow, bool, sim.Time, error)
	// AddrCeil returns the entry with the least starting sector ≥ sector
	// (any version).
	AddrCeil(at sim.Time, medium, sector uint64) (relation.AddrRow, bool, sim.Time, error)
	// MediumFloor returns the medium-table row with the greatest Start ≤
	// start for the medium. Medium-table rows never overlap.
	MediumFloor(at sim.Time, medium, start uint64) (relation.MediumRow, bool, sim.Time, error)
}

// MaxCBlockSectors bounds how far below a sector an address entry covering
// it can start — the cblock size cap (§4.6).
const MaxCBlockSectors = 64

// Extent describes how a contiguous run of sectors is served.
type Extent struct {
	Zero    bool             // unwritten space: reads return zeros
	Addr    relation.AddrRow // the cblock mapping (valid when !Zero)
	Inner   uint64           // first sector within the cblock
	Sectors uint64           // run length
	Depth   int              // mediums traversed to resolve (0 = direct hit)
}

// maxDepth bounds chain traversal. GC flattens chains so reads touch at
// most 3 cblocks (§4.6); a deeper chain mid-flatten still resolves, but a
// chain this deep indicates a metadata cycle.
const maxDepth = 32

// ResolveExtent resolves sectors [sector, sector+maxSectors) of a medium
// into the longest contiguous extent served one way. Callers loop, reading
// extent by extent.
func ResolveExtent(at sim.Time, lk Lookup, medium, sector, maxSectors uint64) (Extent, sim.Time, error) {
	return resolve(at, lk, medium, sector, maxSectors, 0)
}

func resolve(at sim.Time, lk Lookup, medium, sector, maxSectors uint64, depth int) (Extent, sim.Time, error) {
	if depth > maxDepth {
		return Extent{}, at, fmt.Errorf("medium: chain deeper than %d at medium %d", maxDepth, medium)
	}
	if maxSectors == 0 {
		return Extent{Zero: true, Sectors: 0, Depth: depth}, at, nil
	}
	done := at

	// 1. A cblock written directly to this medium wins: the newest entry
	// covering the sector.
	e, ok, d, err := lk.AddrCovering(done, medium, sector)
	done = d
	if err != nil {
		return Extent{}, done, err
	}
	if ok {
		off := sector - e.Sector
		n := e.Sectors - off
		if n > maxSectors {
			n = maxSectors
		}
		// A newer entry may begin inside this one's range and shadow its
		// tail; split at the next entry boundary and re-resolve there.
		// (Conservative: the boundary may belong to an older entry, in
		// which case the follow-up resolution just re-picks this one.)
		c, ok2, d, err := lk.AddrCeil(done, medium, sector+1)
		done = d
		if err != nil {
			return Extent{}, done, err
		}
		if ok2 && c.Sector-sector < n {
			n = c.Sector - sector
		}
		return Extent{Addr: e, Inner: e.Inner + off, Sectors: n, Depth: depth}, done, nil
	}

	// 2. The run ends where the next direct cblock begins.
	bound := maxSectors
	c, ok, d, err := lk.AddrCeil(done, medium, sector+1)
	done = d
	if err != nil {
		return Extent{}, done, err
	}
	if ok && c.Sector-sector < bound {
		bound = c.Sector - sector
	}

	// 3. Fall through to the underlying medium, if any.
	row, ok, d, err := lk.MediumFloor(done, medium, sector)
	done = d
	if err != nil {
		return Extent{}, done, err
	}
	if !ok || row.End < sector || row.Target == relation.NoMedium {
		if ok && row.End >= sector && row.End-sector+1 < bound {
			bound = row.End - sector + 1
		}
		return Extent{Zero: true, Sectors: bound, Depth: depth}, done, nil
	}
	if row.End-sector+1 < bound {
		bound = row.End - sector + 1
	}
	sub, done, err := resolve(done, lk, row.Target, row.TargetOff+(sector-row.Start), bound, depth+1)
	return sub, done, err
}

// ResolveAll resolves a whole range into extents.
func ResolveAll(at sim.Time, lk Lookup, medium, sector, sectors uint64) ([]Extent, sim.Time, error) {
	var out []Extent
	done := at
	for sectors > 0 {
		ext, d, err := resolve(done, lk, medium, sector, sectors, 0)
		done = d
		if err != nil {
			return nil, done, err
		}
		if ext.Sectors == 0 {
			return nil, done, fmt.Errorf("medium: resolver made no progress at medium %d sector %d", medium, sector)
		}
		out = append(out, ext)
		sector += ext.Sectors
		sectors -= ext.Sectors
	}
	return out, done, nil
}

// MaxDepth returns the deepest resolution among extents — the quantity the
// GC's flattening keeps ≤ 2 levels (3 cblock accesses, §4.6).
func MaxDepth(exts []Extent) int {
	max := 0
	for _, e := range exts {
		if e.Depth > max {
			max = e.Depth
		}
	}
	return max
}
