package medium

import (
	"sort"
	"testing"

	"purity/internal/relation"
	"purity/internal/sim"
)

// memLookup is an in-memory Lookup for tests. Later addAddr calls are
// "newer" (higher seq) for AddrCovering purposes.
type addrEntry struct {
	row relation.AddrRow
	seq int
}

type memLookup struct {
	addrs   map[uint64][]addrEntry          // per medium, insertion order
	mediums map[uint64][]relation.MediumRow // per medium, sorted by Start
	nextSeq int
	calls   int
}

func newMemLookup() *memLookup {
	return &memLookup{addrs: map[uint64][]addrEntry{}, mediums: map[uint64][]relation.MediumRow{}}
}

func (m *memLookup) addAddr(r relation.AddrRow) {
	m.nextSeq++
	m.addrs[r.Medium] = append(m.addrs[r.Medium], addrEntry{row: r, seq: m.nextSeq})
}

func (m *memLookup) addMedium(r relation.MediumRow) {
	l := append(m.mediums[r.Source], r)
	sort.Slice(l, func(i, j int) bool { return l[i].Start < l[j].Start })
	m.mediums[r.Source] = l
}

func (m *memLookup) AddrCovering(at sim.Time, medium, sector uint64) (relation.AddrRow, bool, sim.Time, error) {
	m.calls++
	var best addrEntry
	found := false
	for _, e := range m.addrs[medium] {
		if e.row.Sector <= sector && e.row.Sector+e.row.Sectors > sector {
			if !found || e.seq > best.seq {
				best = e
				found = true
			}
		}
	}
	return best.row, found, at, nil
}

func (m *memLookup) AddrCeil(at sim.Time, medium, sector uint64) (relation.AddrRow, bool, sim.Time, error) {
	m.calls++
	var best relation.AddrRow
	found := false
	for _, e := range m.addrs[medium] {
		if e.row.Sector >= sector && (!found || e.row.Sector < best.Sector) {
			best = e.row
			found = true
		}
	}
	return best, found, at, nil
}

func (m *memLookup) MediumFloor(at sim.Time, medium, start uint64) (relation.MediumRow, bool, sim.Time, error) {
	m.calls++
	var best relation.MediumRow
	found := false
	for _, r := range m.mediums[medium] {
		if r.Start <= start {
			best = r
			found = true
		}
	}
	return best, found, at, nil
}

// figure6 builds the paper's exact medium table (Figure 6): 14 is a
// snapshot of 12; 15 and 18 are clones of part of 12; 20 snapshots 18; 22
// snapshots 21; rows for 22 show the shortcut through to 12.
func figure6() *memLookup {
	lk := newMemLookup()
	rows := []relation.MediumRow{
		{Source: 12, Start: 0, End: 3999, Target: relation.NoMedium, Status: relation.MediumRO},
		{Source: 14, Start: 0, End: 3999, Target: 12, TargetOff: 0, Status: relation.MediumRW},
		{Source: 15, Start: 0, End: 999, Target: 12, TargetOff: 2000, Status: relation.MediumRW},
		{Source: 18, Start: 0, End: 999, Target: 12, TargetOff: 2000, Status: relation.MediumRO},
		{Source: 20, Start: 0, End: 999, Target: 18, TargetOff: 0, Status: relation.MediumRO},
		{Source: 21, Start: 0, End: 999, Target: 20, TargetOff: 0, Status: relation.MediumRO},
		{Source: 22, Start: 0, End: 499, Target: 21, TargetOff: 0, Status: relation.MediumRW},
		{Source: 22, Start: 500, End: 999, Target: 12, TargetOff: 2500, Status: relation.MediumRW},
		{Source: 22, Start: 1000, End: 1999, Target: relation.NoMedium, Status: relation.MediumRW},
	}
	for _, r := range rows {
		lk.addMedium(r)
	}
	return lk
}

func resolveOne(t *testing.T, lk Lookup, medium, sector, max uint64) Extent {
	t.Helper()
	ext, _, err := ResolveExtent(0, lk, medium, sector, max)
	if err != nil {
		t.Fatalf("resolve %d@%d: %v", medium, sector, err)
	}
	return ext
}

func TestMediumTableFigure6(t *testing.T) {
	lk := figure6()
	// Data written directly to 12, covering its whole range: one cblock
	// per 8 sectors tagged by SegOff = sector*1000.
	for s := uint64(0); s < 4000; s += 8 {
		lk.addAddr(relation.AddrRow{Medium: 12, Sector: s, Segment: 1, SegOff: s * 1000, Sectors: 8})
	}

	// 14 is a snapshot of 12: reads resolve through one hop.
	// Sector 100 sits at offset 4 of the cblock starting at sector 96.
	ext := resolveOne(t, lk, 14, 100, 8)
	if ext.Zero || ext.Addr.SegOff != 96*1000 || ext.Inner != 4 || ext.Depth != 1 {
		t.Fatalf("14@100 = %+v", ext)
	}

	// 15 is a clone of part of 12 (offset 2000): 15@0 reads 12@2000.
	ext = resolveOne(t, lk, 15, 0, 8)
	if ext.Addr.SegOff != 2000*1000 {
		t.Fatalf("15@0 = %+v", ext)
	}

	// 22 blocks 500-999 shortcut directly to 12 (the paper's "fewer
	// lookups" example): depth 1 despite the nominal 22→21→20→18→12 chain.
	ext = resolveOne(t, lk, 22, 500, 8)
	if ext.Addr.SegOff != 2496*1000 || ext.Inner != 4 {
		t.Fatalf("22@500 = %+v", ext)
	}
	if ext.Depth != 1 {
		t.Fatalf("22@500 depth = %d, want 1 (shortcut)", ext.Depth)
	}

	// 22 blocks 0-499 traverse 21→20→18→12: depth 4.
	ext = resolveOne(t, lk, 22, 100, 8)
	if ext.Addr.SegOff != 2096*1000 || ext.Inner != 4 {
		t.Fatalf("22@100 = %+v", ext)
	}
	if ext.Depth != 4 {
		t.Fatalf("22@100 depth = %d, want 4", ext.Depth)
	}

	// 22 blocks 1000-1999 were never written anywhere: zeros.
	ext = resolveOne(t, lk, 22, 1500, 16)
	if !ext.Zero || ext.Sectors != 16 {
		t.Fatalf("22@1500 = %+v", ext)
	}

	// Writes to 22 shadow the chain.
	lk.addAddr(relation.AddrRow{Medium: 22, Sector: 96, Segment: 9, SegOff: 424242, Sectors: 8})
	ext = resolveOne(t, lk, 22, 96, 8)
	if ext.Zero || ext.Addr.SegOff != 424242 || ext.Depth != 0 {
		t.Fatalf("22@96 after write = %+v", ext)
	}
	// ... and bound neighbouring resolution: 22@90 resolves through the
	// chain but only for 6 sectors, up to the direct write.
	ext = resolveOne(t, lk, 22, 90, 64)
	if ext.Sectors != 6 {
		t.Fatalf("22@90 run = %+v, want 6 sectors", ext)
	}
}

func TestResolvePartialCoverage(t *testing.T) {
	lk := newMemLookup()
	lk.addMedium(relation.MediumRow{Source: 1, Start: 0, End: 9999, Target: relation.NoMedium, Status: relation.MediumRW})
	lk.addAddr(relation.AddrRow{Medium: 1, Sector: 10, Segment: 1, SegOff: 0, Sectors: 8})

	// Hit in the middle of the cblock.
	ext := resolveOne(t, lk, 1, 13, 64)
	if ext.Zero || ext.Inner != 3 || ext.Sectors != 5 {
		t.Fatalf("mid-cblock = %+v", ext)
	}
	// Gap before the entry is zero, bounded by the entry.
	ext = resolveOne(t, lk, 1, 0, 64)
	if !ext.Zero || ext.Sectors != 10 {
		t.Fatalf("gap = %+v", ext)
	}
	// Beyond the medium's row: zero bounded by request.
	ext = resolveOne(t, lk, 1, 20000, 4)
	if !ext.Zero || ext.Sectors != 4 {
		t.Fatalf("past end = %+v", ext)
	}
}

func TestResolveDedupInnerOffsets(t *testing.T) {
	// A dedup reference with nonzero Inner: resolution must add offsets.
	lk := newMemLookup()
	lk.addMedium(relation.MediumRow{Source: 1, Start: 0, End: 999, Target: relation.NoMedium, Status: relation.MediumRW})
	lk.addAddr(relation.AddrRow{Medium: 1, Sector: 100, Segment: 5, SegOff: 777, Inner: 4, Sectors: 8, Flags: relation.AddrFlagDedup})
	ext := resolveOne(t, lk, 1, 103, 2)
	if ext.Inner != 7 || ext.Sectors != 2 {
		t.Fatalf("dedup extent = %+v", ext)
	}
}

func TestResolveAllStitchesExtents(t *testing.T) {
	lk := figure6()
	for s := uint64(0); s < 4000; s += 8 {
		lk.addAddr(relation.AddrRow{Medium: 12, Sector: s, Segment: 1, SegOff: s, Sectors: 8})
	}
	// 22@490..519 spans the 21-chain region and the 12-shortcut region.
	exts, _, err := ResolveAll(0, lk, 22, 490, 30)
	if err != nil {
		t.Fatal(err)
	}
	var total uint64
	for _, e := range exts {
		total += e.Sectors
	}
	if total != 30 {
		t.Fatalf("extents cover %d sectors: %+v", total, exts)
	}
	if MaxDepth(exts) != 4 {
		t.Fatalf("MaxDepth = %d", MaxDepth(exts))
	}
}

func TestResolveCycleDetected(t *testing.T) {
	lk := newMemLookup()
	lk.addMedium(relation.MediumRow{Source: 1, Start: 0, End: 99, Target: 2, Status: relation.MediumRO})
	lk.addMedium(relation.MediumRow{Source: 2, Start: 0, End: 99, Target: 1, Status: relation.MediumRO})
	if _, _, err := ResolveExtent(0, lk, 1, 5, 1); err == nil {
		t.Fatal("medium cycle resolved without error")
	}
}
