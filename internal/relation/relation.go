// Package relation defines the schemas of Purity's metadata relations and
// the typed row forms of their facts. Every relation is stored in a pyramid
// (§4.8 of the paper); this package is the mapping between Go structs and
// the uint64-column facts the pyramids index.
//
// Important relations, per §4.8: the medium table, the address map (user
// data mappings), the deduplication table, the segment table (with its AU
// placement), and the elide tables.
package relation

import "purity/internal/tuple"

// Relation IDs, stamped into patch descriptors so recovery can route
// rediscovered patches to the right pyramid.
const (
	IDMediums    uint32 = 1
	IDAddrs      uint32 = 2
	IDDedup      uint32 = 3
	IDSegments   uint32 = 4
	IDSegmentAUs uint32 = 5
	IDVolumes    uint32 = 6
	IDElide      uint32 = 7
)

// Schemas, by relation.
var (
	MediumsSchema    = tuple.Schema{Cols: 6, KeyCols: 2}
	AddrsSchema      = tuple.Schema{Cols: 8, KeyCols: 2}
	DedupSchema      = tuple.Schema{Cols: 5, KeyCols: 1}
	SegmentsSchema   = tuple.Schema{Cols: 5, KeyCols: 1}
	SegmentAUsSchema = tuple.Schema{Cols: 4, KeyCols: 2}
	VolumesSchema    = tuple.Schema{Cols: 4, KeyCols: 1, HasBlob: true}
	ElideSchema      = tuple.Schema{Cols: 5, KeyCols: 3}
)

// --- Medium table (Figure 6) -------------------------------------------

// Medium statuses. The paper's Figure 6 shows RO (sealed snapshots and
// interior nodes) and RW (the writable leaf of each volume).
const (
	MediumRO uint64 = 0
	MediumRW uint64 = 1
)

// NoMedium is the "none" target in Figure 6: reads that resolve here hit
// unwritten space and return zeros. Medium IDs start at 1.
const NoMedium uint64 = 0

// MediumRow is one row of the medium table: sectors [Start, End] of medium
// Source are backed by medium Target at Target's offset TargetOff (sector
// units), unless overridden by cblocks written directly to Source.
// Rows are immutable facts: decode, read, re-emit — never write through.
type MediumRow struct {
	Source    uint64
	Start     uint64
	End       uint64
	Target    uint64
	TargetOff uint64
	Status    uint64
}

// Fact encodes the row with a sequence number.
func (r MediumRow) Fact(seq tuple.Seq) tuple.Fact {
	return tuple.Fact{Seq: seq, Cols: []uint64{r.Source, r.Start, r.End, r.Target, r.TargetOff, r.Status}}
}

// MediumFromFact decodes a medium-table fact.
func MediumFromFact(f tuple.Fact) MediumRow {
	return MediumRow{
		Source: f.Cols[0], Start: f.Cols[1], End: f.Cols[2],
		Target: f.Cols[3], TargetOff: f.Cols[4], Status: f.Cols[5],
	}
}

// --- Address map ---------------------------------------------------------

// Address-map flags.
const (
	AddrFlagDedup uint64 = 1 << 0 // mapping points at another write's data
)

// AddrRow maps sectors [Sector, Sector+Sectors) of a medium to sectors
// [Inner, Inner+Sectors) of the cblock at (Segment, SegOff, PhysLen).
// Sector units are 512 B (§4.6); SegOff and PhysLen are bytes within the
// segment's logical space. Inner is 0 for plain writes and nonzero for
// dedup references into the middle of another write's cblock.
// Rows are immutable facts: decode, read, re-emit — never write through.
type AddrRow struct {
	Medium  uint64
	Sector  uint64
	Segment uint64
	SegOff  uint64
	PhysLen uint64
	Inner   uint64
	Sectors uint64
	Flags   uint64
}

// Fact encodes the row with a sequence number.
func (r AddrRow) Fact(seq tuple.Seq) tuple.Fact {
	return tuple.Fact{Seq: seq, Cols: []uint64{r.Medium, r.Sector, r.Segment, r.SegOff, r.PhysLen, r.Inner, r.Sectors, r.Flags}}
}

// AddrFromFact decodes an address-map fact.
func AddrFromFact(f tuple.Fact) AddrRow {
	return AddrRow{
		Medium: f.Cols[0], Sector: f.Cols[1], Segment: f.Cols[2],
		SegOff: f.Cols[3], PhysLen: f.Cols[4], Inner: f.Cols[5], Sectors: f.Cols[6], Flags: f.Cols[7],
	}
}

// RemapAddr returns a copy of an address fact re-pointed at a new physical
// location, keeping its sequence number. NVRAM replay uses it when a
// record's data is re-placed into a fresh segment.
func RemapAddr(f tuple.Fact, seg, segOff, physLen uint64) tuple.Fact {
	r := AddrFromFact(f)
	r.Segment, r.SegOff, r.PhysLen = seg, segOff, physLen
	return r.Fact(f.Seq)
}

// --- Deduplication table -------------------------------------------------

// DedupRow records that the 512 B block with the given hash lives at sector
// SectorIdx within the cblock at (Segment, SegOff, PhysLen). Only every
// eighth block's hash is recorded (§4.7); entries may go stale when GC
// moves data, so users byte-verify before trusting them.
// Rows are immutable facts: decode, read, re-emit — never write through.
type DedupRow struct {
	Hash      uint64
	Segment   uint64
	SegOff    uint64
	PhysLen   uint64
	SectorIdx uint64
}

// Fact encodes the row with a sequence number.
func (r DedupRow) Fact(seq tuple.Seq) tuple.Fact {
	return tuple.Fact{Seq: seq, Cols: []uint64{r.Hash, r.Segment, r.SegOff, r.PhysLen, r.SectorIdx}}
}

// DedupFromFact decodes a dedup-table fact.
func DedupFromFact(f tuple.Fact) DedupRow {
	return DedupRow{Hash: f.Cols[0], Segment: f.Cols[1], SegOff: f.Cols[2], PhysLen: f.Cols[3], SectorIdx: f.Cols[4]}
}

// RemapDedup returns a copy of a dedup fact re-pointed at a new physical
// location, keeping its sequence number. See RemapAddr.
func RemapDedup(f tuple.Fact, seg, segOff, physLen uint64) tuple.Fact {
	r := DedupFromFact(f)
	r.Segment, r.SegOff, r.PhysLen = seg, segOff, physLen
	return r.Fact(f.Seq)
}

// --- Segment table ---------------------------------------------------------

// Segment states.
const (
	SegmentOpen   uint64 = 0
	SegmentSealed uint64 = 1
	SegmentDead   uint64 = 2
)

// SegmentRow tracks one segment. LiveBytes is a materialized aggregate kept
// approximately (§3.3: "we keep approximations and then fix them up by
// issuing additional reads at runtime"); GC recomputes the truth when it
// considers the segment.
// Rows are immutable facts: decode, read, re-emit — never write through.
type SegmentRow struct {
	Segment    uint64
	State      uint64
	Stripes    uint64
	TotalBytes uint64
	LiveBytes  uint64
}

// Fact encodes the row with a sequence number.
func (r SegmentRow) Fact(seq tuple.Seq) tuple.Fact {
	return tuple.Fact{Seq: seq, Cols: []uint64{r.Segment, r.State, r.Stripes, r.TotalBytes, r.LiveBytes}}
}

// SegmentFromFact decodes a segment-table fact.
func SegmentFromFact(f tuple.Fact) SegmentRow {
	return SegmentRow{Segment: f.Cols[0], State: f.Cols[1], Stripes: f.Cols[2], TotalBytes: f.Cols[3], LiveBytes: f.Cols[4]}
}

// SegmentAURow records that shard Shard of a segment lives on (Drive, AU).
// Rows are immutable facts: decode, read, re-emit — never write through.
type SegmentAURow struct {
	Segment uint64
	Shard   uint64
	Drive   uint64
	AUIndex uint64
}

// Fact encodes the row with a sequence number.
func (r SegmentAURow) Fact(seq tuple.Seq) tuple.Fact {
	return tuple.Fact{Seq: seq, Cols: []uint64{r.Segment, r.Shard, r.Drive, r.AUIndex}}
}

// SegmentAUFromFact decodes a segment-AU fact.
func SegmentAUFromFact(f tuple.Fact) SegmentAURow {
	return SegmentAURow{Segment: f.Cols[0], Shard: f.Cols[1], Drive: f.Cols[2], AUIndex: f.Cols[3]}
}

// --- Volume catalog ---------------------------------------------------------

// Volume kinds/states.
const (
	VolumeActive   uint64 = 0
	VolumeSnapshot uint64 = 1
	VolumeDeleted  uint64 = 2
)

// VolumeRow names a volume or snapshot and points at its current medium.
// SizeSectors is the thin-provisioned virtual size.
// Rows are immutable facts: decode, read, re-emit — never write through.
type VolumeRow struct {
	Volume      uint64
	Medium      uint64
	SizeSectors uint64
	State       uint64
	Name        string
}

// Fact encodes the row with a sequence number.
func (r VolumeRow) Fact(seq tuple.Seq) tuple.Fact {
	return tuple.Fact{
		Seq:  seq,
		Cols: []uint64{r.Volume, r.Medium, r.SizeSectors, r.State},
		Blob: []byte(r.Name),
	}
}

// VolumeFromFact decodes a volume-catalog fact.
func VolumeFromFact(f tuple.Fact) VolumeRow {
	return VolumeRow{
		Volume: f.Cols[0], Medium: f.Cols[1], SizeSectors: f.Cols[2], State: f.Cols[3],
		Name: string(f.Blob),
	}
}

// --- Persisted elide predicates ---------------------------------------------

// ElideRow persists one elide predicate against a base relation. The
// in-memory elide.Table per relation is materialized from these facts at
// recovery.
// Rows are immutable facts: decode, read, re-emit — never write through.
type ElideRow struct {
	Table  uint32 // relation ID the predicate applies to
	Col    uint64
	Lo, Hi uint64
	MaxSeq tuple.Seq
}

// Fact encodes the row with a sequence number.
func (r ElideRow) Fact(seq tuple.Seq) tuple.Fact {
	return tuple.Fact{Seq: seq, Cols: []uint64{uint64(r.Table), r.Col, r.Lo, r.Hi, uint64(r.MaxSeq)}}
}

// ElideFromFact decodes a persisted elide predicate.
func ElideFromFact(f tuple.Fact) ElideRow {
	return ElideRow{
		Table: uint32(f.Cols[0]), Col: f.Cols[1], Lo: f.Cols[2], Hi: f.Cols[3], MaxSeq: tuple.Seq(f.Cols[4]),
	}
}

// SchemaFor returns the schema of a relation ID, or ok=false.
func SchemaFor(id uint32) (tuple.Schema, bool) {
	switch id {
	case IDMediums:
		return MediumsSchema, true
	case IDAddrs:
		return AddrsSchema, true
	case IDDedup:
		return DedupSchema, true
	case IDSegments:
		return SegmentsSchema, true
	case IDSegmentAUs:
		return SegmentAUsSchema, true
	case IDVolumes:
		return VolumesSchema, true
	case IDElide:
		return ElideSchema, true
	}
	return tuple.Schema{}, false
}
