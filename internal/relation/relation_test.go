package relation

import (
	"testing"

	"purity/internal/tuple"
)

func TestSchemasValid(t *testing.T) {
	for id := uint32(1); id <= 7; id++ {
		s, ok := SchemaFor(id)
		if !ok {
			t.Fatalf("no schema for id %d", id)
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("schema %d: %v", id, err)
		}
	}
	if _, ok := SchemaFor(99); ok {
		t.Fatal("unknown id resolved")
	}
}

func TestMediumRowRoundTrip(t *testing.T) {
	in := MediumRow{Source: 22, Start: 500, End: 999, Target: 12, TargetOff: 2500, Status: MediumRW}
	f := in.Fact(77)
	if f.Seq != 77 || len(f.Cols) != MediumsSchema.Cols {
		t.Fatalf("fact = %+v", f)
	}
	if got := MediumFromFact(f); got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
}

func TestAddrRowRoundTrip(t *testing.T) {
	in := AddrRow{Medium: 5, Sector: 1024, Segment: 33, SegOff: 8192, PhysLen: 900, Inner: 3, Sectors: 64, Flags: AddrFlagDedup}
	got := AddrFromFact(in.Fact(1))
	if got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
}

func TestDedupRowRoundTrip(t *testing.T) {
	in := DedupRow{Hash: 0xdeadbeefcafef00d, Segment: 7, SegOff: 4096, PhysLen: 500, SectorIdx: 3}
	got := DedupFromFact(in.Fact(9))
	if got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
}

func TestSegmentRowsRoundTrip(t *testing.T) {
	in := SegmentRow{Segment: 4, State: SegmentSealed, Stripes: 8, TotalBytes: 1 << 20, LiveBytes: 12345}
	if got := SegmentFromFact(in.Fact(2)); got != in {
		t.Fatalf("segment: %+v != %+v", got, in)
	}
	au := SegmentAURow{Segment: 4, Shard: 2, Drive: 9, AUIndex: 17}
	if got := SegmentAUFromFact(au.Fact(3)); got != au {
		t.Fatalf("segmentAU: %+v != %+v", got, au)
	}
}

func TestVolumeRowRoundTrip(t *testing.T) {
	in := VolumeRow{Volume: 3, Medium: 18, SizeSectors: 1 << 21, State: VolumeActive, Name: "oracle-rac-01"}
	f := in.Fact(5)
	if string(f.Blob) != in.Name {
		t.Fatalf("blob = %q", f.Blob)
	}
	if got := VolumeFromFact(f); got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
}

func TestElideRowRoundTrip(t *testing.T) {
	in := ElideRow{Table: IDAddrs, Col: 0, Lo: 17, Hi: 17, MaxSeq: tuple.Seq(1 << 40)}
	if got := ElideFromFact(in.Fact(6)); got != in {
		t.Fatalf("round trip: %+v != %+v", got, in)
	}
}
