package sim

import "math"

// Rand is a small, fast, deterministic PRNG (splitmix64 core). Simulations
// and workload generators use it instead of math/rand so that results are
// stable across Go releases; reproducibility of experiment tables matters
// more than statistical sophistication here.
type Rand struct {
	state uint64
}

// NewRand returns a generator seeded with seed. Distinct seeds give
// independent-looking streams; a zero seed is remapped so the stream is
// never degenerate.
func NewRand(seed uint64) *Rand {
	if seed == 0 {
		seed = 0x9e3779b97f4a7c15
	}
	return &Rand{state: seed}
}

// Uint64 returns the next 64 pseudo-random bits.
func (r *Rand) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Intn returns a uniform int in [0, n). It panics if n <= 0.
func (r *Rand) Intn(n int) int {
	if n <= 0 {
		panic("sim: Intn with non-positive n")
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). It panics if n <= 0.
func (r *Rand) Int63n(n int64) int64 {
	if n <= 0 {
		panic("sim: Int63n with non-positive n")
	}
	return int64(r.Uint64() % uint64(n))
}

// Float64 returns a uniform float64 in [0, 1).
func (r *Rand) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Perm returns a pseudo-random permutation of [0, n).
func (r *Rand) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Shuffle pseudo-randomizes the order of n elements using swap.
func (r *Rand) Shuffle(n int, swap func(i, j int)) {
	for i := n - 1; i > 0; i-- {
		swap(i, r.Intn(i+1))
	}
}

// ExpFloat64 returns an exponentially distributed float64 with mean 1.
func (r *Rand) ExpFloat64() float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -math.Log(u)
}

// NormFloat64 returns a normally distributed float64 (mean 0, stddev 1)
// using the Box–Muller transform.
func (r *Rand) NormFloat64() float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// Bytes fills b with pseudo-random bytes.
func (r *Rand) Bytes(b []byte) {
	i := 0
	for ; i+8 <= len(b); i += 8 {
		v := r.Uint64()
		b[i] = byte(v)
		b[i+1] = byte(v >> 8)
		b[i+2] = byte(v >> 16)
		b[i+3] = byte(v >> 24)
		b[i+4] = byte(v >> 32)
		b[i+5] = byte(v >> 40)
		b[i+6] = byte(v >> 48)
		b[i+7] = byte(v >> 56)
	}
	if i < len(b) {
		v := r.Uint64()
		for ; i < len(b); i++ {
			b[i] = byte(v)
			v >>= 8
		}
	}
}

// Zipf generates Zipf-distributed values in [0, n) with skew s in (0, 1).
// YCSB's default is s ≈ 0.99, which models the hot-key skew of the key-value
// workloads in the paper's §2.3.
type Zipf struct {
	r    *Rand
	n    int64
	s    float64
	zeta float64 // generalized harmonic number H_{n,s}
	eta  float64
	half float64 // zeta(2, s)
}

// NewZipf returns a Zipf generator over [0, n) with exponent s.
// It panics unless n > 0 and 0 < s < 1.
func NewZipf(r *Rand, n int64, s float64) *Zipf {
	if n <= 0 || s <= 0 || s >= 1 {
		panic("sim: invalid Zipf parameters")
	}
	z := &Zipf{r: r, n: n, s: s}
	for i := int64(1); i <= n; i++ {
		z.zeta += 1 / math.Pow(float64(i), s)
	}
	z.half = 1 + 1/math.Pow(2, s)
	z.eta = (1 - math.Pow(2/float64(n), 1-s)) / (1 - z.half/z.zeta)
	return z
}

// Next returns the next Zipf-distributed value in [0, n); rank 0 is hottest.
// Uses Gray et al.'s rejection-free approximation (the one YCSB uses).
func (z *Zipf) Next() int64 {
	u := z.r.Float64()
	uz := u * z.zeta
	if uz < 1 {
		return 0
	}
	if uz < z.half {
		return 1
	}
	v := int64(float64(z.n) * math.Pow(z.eta*u-z.eta+1, 1/(1-z.s)))
	if v < 0 {
		v = 0
	}
	if v >= z.n {
		v = z.n - 1
	}
	return v
}
