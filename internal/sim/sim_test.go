package sim

import (
	"math"
	"testing"
	"testing/quick"
)

func TestTimeString(t *testing.T) {
	cases := []struct {
		t    Time
		want string
	}{
		{0, "0ns"},
		{999, "999ns"},
		{1500, "1.50µs"},
		{2 * Millisecond, "2.00ms"},
		{3 * Second, "3.000s"},
		{-1500, "-1.50µs"},
	}
	for _, c := range cases {
		if got := c.t.String(); got != c.want {
			t.Errorf("Time(%d).String() = %q, want %q", int64(c.t), got, c.want)
		}
	}
}

func TestTimeConversions(t *testing.T) {
	d := 1500 * Microsecond
	if d.Millis() != 1.5 {
		t.Errorf("Millis = %v, want 1.5", d.Millis())
	}
	if d.Micros() != 1500 {
		t.Errorf("Micros = %v, want 1500", d.Micros())
	}
	if d.Seconds() != 0.0015 {
		t.Errorf("Seconds = %v, want 0.0015", d.Seconds())
	}
}

func TestMaxMin(t *testing.T) {
	if Max(1, 2) != 2 || Max(2, 1) != 2 {
		t.Error("Max broken")
	}
	if Min(1, 2) != 1 || Min(2, 1) != 1 {
		t.Error("Min broken")
	}
}

func TestClockAdvance(t *testing.T) {
	c := NewClock()
	if c.Now() != 0 {
		t.Fatalf("new clock at %v, want 0", c.Now())
	}
	c.Advance(5 * Microsecond)
	if c.Now() != 5*Microsecond {
		t.Fatalf("now = %v, want 5µs", c.Now())
	}
	c.AdvanceTo(3 * Microsecond) // past: no-op
	if c.Now() != 5*Microsecond {
		t.Fatalf("AdvanceTo past moved clock to %v", c.Now())
	}
	c.AdvanceTo(9 * Microsecond)
	if c.Now() != 9*Microsecond {
		t.Fatalf("now = %v, want 9µs", c.Now())
	}
}

func TestClockNegativeAdvancePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("negative advance did not panic")
		}
	}()
	NewClock().Advance(-1)
}

func TestLoopOrdering(t *testing.T) {
	l := NewLoop()
	var order []int
	l.At(30, func(Time) { order = append(order, 3) })
	l.At(10, func(Time) { order = append(order, 1) })
	l.At(20, func(Time) { order = append(order, 2) })
	// Equal-time events fire in scheduling order.
	l.At(20, func(Time) { order = append(order, 4) })
	if n := l.Run(); n != 4 {
		t.Fatalf("ran %d events, want 4", n)
	}
	want := []int{1, 2, 4, 3}
	for i, v := range want {
		if order[i] != v {
			t.Fatalf("order = %v, want %v", order, want)
		}
	}
	if l.Now() != 30 {
		t.Fatalf("clock at %v, want 30", l.Now())
	}
}

func TestLoopRunUntil(t *testing.T) {
	l := NewLoop()
	fired := 0
	for i := 1; i <= 10; i++ {
		l.At(Time(i*10), func(Time) { fired++ })
	}
	if n := l.RunUntil(55); n != 5 {
		t.Fatalf("RunUntil ran %d, want 5", n)
	}
	if l.Now() != 55 {
		t.Fatalf("clock at %v, want 55", l.Now())
	}
	if l.Pending() != 5 {
		t.Fatalf("pending = %d, want 5", l.Pending())
	}
	l.Run()
	if fired != 10 {
		t.Fatalf("fired = %d, want 10", fired)
	}
}

func TestLoopCascade(t *testing.T) {
	// Events scheduling further events, like a device completing and the
	// scheduler immediately issuing the next request.
	l := NewLoop()
	count := 0
	var tick func(now Time)
	tick = func(now Time) {
		count++
		if count < 100 {
			l.At(now+Microsecond, tick)
		}
	}
	l.At(0, tick)
	l.Run()
	if count != 100 {
		t.Fatalf("count = %d, want 100", count)
	}
	if l.Now() != 99*Microsecond {
		t.Fatalf("clock at %v, want 99µs", l.Now())
	}
}

func TestLoopPastSchedulingPanics(t *testing.T) {
	l := NewLoop()
	l.At(10, func(Time) {})
	l.Run()
	defer func() {
		if recover() == nil {
			t.Fatal("scheduling in the past did not panic")
		}
	}()
	l.At(5, func(Time) {})
}

func TestRandDeterminism(t *testing.T) {
	a, b := NewRand(42), NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same-seed streams diverged")
		}
	}
	c := NewRand(43)
	same := 0
	a = NewRand(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() == c.Uint64() {
			same++
		}
	}
	if same > 0 {
		t.Fatalf("different-seed streams collided %d times", same)
	}
}

func TestRandZeroSeed(t *testing.T) {
	r := NewRand(0)
	if r.Uint64() == 0 && r.Uint64() == 0 {
		t.Fatal("zero seed produced degenerate stream")
	}
}

func TestRandUniformity(t *testing.T) {
	r := NewRand(7)
	const buckets, n = 16, 160000
	counts := make([]int, buckets)
	for i := 0; i < n; i++ {
		counts[r.Intn(buckets)]++
	}
	want := n / buckets
	for i, c := range counts {
		if c < want*9/10 || c > want*11/10 {
			t.Errorf("bucket %d: %d draws, want ≈%d", i, c, want)
		}
	}
}

func TestRandFloat64Range(t *testing.T) {
	r := NewRand(9)
	for i := 0; i < 10000; i++ {
		f := r.Float64()
		if f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
	}
}

func TestRandExpMean(t *testing.T) {
	r := NewRand(11)
	sum := 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.ExpFloat64()
	}
	mean := sum / n
	if math.Abs(mean-1) > 0.02 {
		t.Fatalf("exp mean = %v, want ≈1", mean)
	}
}

func TestRandNormMoments(t *testing.T) {
	r := NewRand(13)
	sum, sumsq := 0.0, 0.0
	const n = 100000
	for i := 0; i < n; i++ {
		v := r.NormFloat64()
		sum += v
		sumsq += v * v
	}
	mean := sum / n
	variance := sumsq/n - mean*mean
	if math.Abs(mean) > 0.02 {
		t.Fatalf("norm mean = %v, want ≈0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Fatalf("norm variance = %v, want ≈1", variance)
	}
}

func TestRandPerm(t *testing.T) {
	r := NewRand(17)
	p := r.Perm(100)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("Perm not a permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRandBytes(t *testing.T) {
	r := NewRand(19)
	for _, n := range []int{0, 1, 7, 8, 9, 64, 1000} {
		b := make([]byte, n)
		r.Bytes(b)
		if n >= 64 {
			zero := 0
			for _, v := range b {
				if v == 0 {
					zero++
				}
			}
			if zero > n/8 {
				t.Fatalf("Bytes(%d): %d zero bytes, looks non-random", n, zero)
			}
		}
	}
}

func TestRandBytesProperty(t *testing.T) {
	// Same seed + same length always yields the same bytes.
	f := func(seed uint64, n uint8) bool {
		a := make([]byte, n)
		b := make([]byte, n)
		NewRand(seed).Bytes(a)
		NewRand(seed).Bytes(b)
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZipfSkew(t *testing.T) {
	r := NewRand(23)
	z := NewZipf(r, 1000, 0.99)
	counts := make(map[int64]int)
	const n = 200000
	for i := 0; i < n; i++ {
		v := z.Next()
		if v < 0 || v >= 1000 {
			t.Fatalf("Zipf out of range: %d", v)
		}
		counts[v]++
	}
	// Rank 0 must be much hotter than rank 100 and the distribution must
	// roughly follow 1/k^s ordering at the head.
	if counts[0] <= counts[100]*10 {
		t.Fatalf("Zipf head not hot: counts[0]=%d counts[100]=%d", counts[0], counts[100])
	}
	if counts[0] <= counts[1] {
		t.Fatalf("rank 0 (%d) not hotter than rank 1 (%d)", counts[0], counts[1])
	}
}

func TestZipfInvalidParams(t *testing.T) {
	for _, c := range []struct {
		n int64
		s float64
	}{{0, 0.5}, {10, 0}, {10, 1}, {10, 1.5}, {-1, 0.5}} {
		func() {
			defer func() { recover() }()
			NewZipf(NewRand(1), c.n, c.s)
			t.Errorf("NewZipf(%d, %v) did not panic", c.n, c.s)
		}()
	}
}

func BenchmarkRandUint64(b *testing.B) {
	r := NewRand(1)
	for i := 0; i < b.N; i++ {
		_ = r.Uint64()
	}
}

func BenchmarkLoopStep(b *testing.B) {
	l := NewLoop()
	var tick func(now Time)
	tick = func(now Time) { l.At(now+1, tick) }
	l.At(0, tick)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		l.Step()
	}
}
