package sim

import "container/heap"

// Event is a callback scheduled at a simulated time. Events with equal times
// fire in scheduling order, which keeps runs deterministic.
type Event struct {
	At  Time
	Fn  func(now Time)
	seq uint64
}

type eventHeap []*Event

func (h eventHeap) Len() int { return len(h) }
func (h eventHeap) Less(i, j int) bool {
	if h[i].At != h[j].At {
		return h[i].At < h[j].At
	}
	return h[i].seq < h[j].seq
}
func (h eventHeap) Swap(i, j int) { h[i], h[j] = h[j], h[i] }
func (h *eventHeap) Push(x any)   { *h = append(*h, x.(*Event)) }
func (h *eventHeap) Pop() any {
	old := *h
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	*h = old[:n-1]
	return e
}

// Loop is a single-threaded discrete-event loop: a clock plus a time-ordered
// event queue. All device completions and background activity in a simulation
// are events on one Loop.
type Loop struct {
	clock Clock
	queue eventHeap
	seq   uint64
}

// NewLoop returns an empty loop at the epoch.
func NewLoop() *Loop { return &Loop{} }

// Now returns the loop's current simulated time.
func (l *Loop) Now() Time { return l.clock.Now() }

// Clock exposes the loop's clock for components that only need to read time.
func (l *Loop) Clock() *Clock { return &l.clock }

// At schedules fn to run at time t. Scheduling in the past panics — it would
// mean a device model produced a completion before its request was issued.
func (l *Loop) At(t Time, fn func(now Time)) {
	if t < l.clock.Now() {
		panic("sim: event scheduled in the past")
	}
	l.seq++
	heap.Push(&l.queue, &Event{At: t, Fn: fn, seq: l.seq})
}

// After schedules fn to run d after the current time.
func (l *Loop) After(d Time, fn func(now Time)) { l.At(l.clock.Now()+d, fn) }

// Pending reports the number of scheduled events.
func (l *Loop) Pending() int { return len(l.queue) }

// Step runs the earliest event, advancing the clock to its time. It returns
// false when the queue is empty.
func (l *Loop) Step() bool {
	if len(l.queue) == 0 {
		return false
	}
	e := heap.Pop(&l.queue).(*Event)
	l.clock.AdvanceTo(e.At)
	e.Fn(e.At)
	return true
}

// RunUntil runs events until the queue is empty or the next event is after
// deadline; the clock finishes at min(deadline, last event time). It returns
// the number of events run.
func (l *Loop) RunUntil(deadline Time) int {
	n := 0
	for len(l.queue) > 0 && l.queue[0].At <= deadline {
		l.Step()
		n++
	}
	l.clock.AdvanceTo(deadline)
	return n
}

// Run drains the queue completely and returns the number of events run.
func (l *Loop) Run() int {
	n := 0
	for l.Step() {
		n++
	}
	return n
}
