package sim

import "sync/atomic"

// Clock is a monotonic logical clock. It is advanced explicitly by the
// simulation driver (an event loop or a closed-loop workload), never by wall
// time. Reads are safe from any goroutine; in practice simulations are
// single-threaded and deterministic.
type Clock struct {
	now atomic.Int64
}

// NewClock returns a clock at the epoch.
func NewClock() *Clock { return &Clock{} }

// Now returns the current simulated time.
func (c *Clock) Now() Time { return Time(c.now.Load()) }

// Advance moves the clock forward by d. It panics on negative d: simulated
// time, like the sequence numbers built on it, is monotonic.
func (c *Clock) Advance(d Time) Time {
	if d < 0 {
		panic("sim: negative clock advance")
	}
	return Time(c.now.Add(int64(d)))
}

// AdvanceTo moves the clock forward to t if t is later than now. Moving to a
// past time is a no-op, which lets multiple completion streams race benignly.
func (c *Clock) AdvanceTo(t Time) {
	for {
		cur := c.now.Load()
		if int64(t) <= cur {
			return
		}
		if c.now.CompareAndSwap(cur, int64(t)) {
			return
		}
	}
}
