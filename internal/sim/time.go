// Package sim provides the deterministic discrete-event substrate used by
// Purity's device models and latency experiments.
//
// The paper reports microsecond-scale tail latencies measured on hardware.
// A Go reproduction cannot measure those faithfully on a wall clock (the
// runtime's garbage collector alone perturbs tails at that scale), so every
// latency-sensitive experiment in this repository runs on simulated time:
// device models compute per-operation service times, an event queue orders
// completions, and histograms record simulated durations. The engine's data
// path operates on real bytes; only time is virtual.
package sim

import "fmt"

// Time is a point in simulated time, in nanoseconds since simulation start.
// A Time is also used to express durations; the zero Time is the epoch.
type Time int64

// Duration units, mirroring time.Duration so device parameters read naturally.
const (
	Nanosecond  Time = 1
	Microsecond Time = 1000 * Nanosecond
	Millisecond Time = 1000 * Microsecond
	Second      Time = 1000 * Millisecond
)

// String renders the time with an adaptive unit, e.g. "13.42ms".
func (t Time) String() string {
	switch {
	case t < 0:
		return "-" + (-t).String()
	case t < Microsecond:
		return fmt.Sprintf("%dns", int64(t))
	case t < Millisecond:
		return fmt.Sprintf("%.2fµs", float64(t)/float64(Microsecond))
	case t < Second:
		return fmt.Sprintf("%.2fms", float64(t)/float64(Millisecond))
	default:
		return fmt.Sprintf("%.3fs", float64(t)/float64(Second))
	}
}

// Seconds returns the time as a floating-point number of seconds.
func (t Time) Seconds() float64 { return float64(t) / float64(Second) }

// Micros returns the time as a floating-point number of microseconds.
func (t Time) Micros() float64 { return float64(t) / float64(Microsecond) }

// Millis returns the time as a floating-point number of milliseconds.
func (t Time) Millis() float64 { return float64(t) / float64(Millisecond) }

// Max returns the later of a and b.
func Max(a, b Time) Time {
	if a > b {
		return a
	}
	return b
}

// Min returns the earlier of a and b.
func Min(a, b Time) Time {
	if a < b {
		return a
	}
	return b
}
