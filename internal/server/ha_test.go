package server

// Tests for the HA serving layer: graceful drain, the admission-slot leak
// fix (write deadlines + abortable admission), idle reaping, heartbeat
// failover, session-bound idempotent writes, and the accept-backoff reset.

import (
	"bytes"
	"errors"
	"net"
	"testing"
	"time"

	"purity/internal/client"
	"purity/internal/controller"
	"purity/internal/core"
	"purity/internal/wire"
)

// TestGracefulDrainFinishesInflight: Shutdown must let an admitted request
// finish and flush its response, refuse new connections, and abort parked
// admission waits instead of leaking their slots.
func TestGracefulDrainFinishesInflight(t *testing.T) {
	s, addr := startServer(t, Config{TenantWindow: 1})
	c, err := client.DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vol, err := c.CreateVolume("v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(vol, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	entered := make(chan struct{}, 2)
	s.stall = func(op byte, payload []byte) {
		if op == wire.OpRead {
			entered <- struct{}{}
			<-gate
		}
	}
	defer func() { s.stall = nil }()

	// First read is admitted and parks in a worker; the second parks in the
	// reader's admission wait (window is 1).
	first := make(chan error, 1)
	second := make(chan error, 1)
	go func() { _, err := c.ReadAt(vol, 0, 4096); first <- err }()
	<-entered // first read holds the tenant window's only slot
	go func() { _, err := c.ReadAt(vol, 0, 4096); second <- err }()
	waitFor(t, "second read parked in admission", func() bool {
		return s.Frontend().AdmissionWaits.Load() >= 1
	})

	shutDone := make(chan error, 1)
	go func() { shutDone <- s.Shutdown(5 * time.Second) }()
	// The parked admission wait must abort promptly (this is the leak fix:
	// before, it would pin the tenant slot forever).
	waitFor(t, "admission abort", func() bool {
		return s.Frontend().AdmissionAborts.Load() >= 1
	})
	close(gate)
	// The admitted request completes and its response is flushed.
	if err := <-first; err != nil {
		t.Fatalf("in-flight read failed across drain: %v", err)
	}
	<-second // aborted request: its call fails when the conn dies; either way it returns
	select {
	case err := <-shutDone:
		if err != nil {
			t.Fatalf("Shutdown: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Shutdown did not return")
	}
	// New connections are refused after drain.
	if c2, err := client.DialPipelined(addr); err == nil {
		c2.Close()
		t.Fatal("drained server accepted a new connection")
	}
	if s.Frontend().Drains.Load() != 1 || s.Frontend().DrainNanos.Load() <= 0 {
		t.Fatalf("drain not recorded: %s", s.Frontend().Summary())
	}
	s.budget.mu.Lock()
	used := s.budget.used
	s.budget.mu.Unlock()
	if used != 0 {
		t.Fatalf("byte budget leaked %d bytes across drain", used)
	}
}

// TestWriterDeadlineFreesAdmission is the admission-slot-leak regression:
// a client that stops reading used to wedge the connection's writer forever
// via backpressure, pinning the tenant slot, the in-flight bytes and the
// reader parked behind them. With the write deadline the connection tears
// down and every admission resource is released.
func TestWriterDeadlineFreesAdmission(t *testing.T) {
	pair, err := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	s := NewWithConfig(pair, controller.Primary, Config{
		TenantWindow: 1,
		WriteTimeout: 50 * time.Millisecond,
	})
	gate := make(chan struct{})
	s.stall = func(op byte, payload []byte) {
		if op == wire.OpStats {
			<-gate
		}
	}

	// net.Pipe gives a fully synchronous transport: the server's response
	// write blocks until the peer reads — and this peer never will.
	cli, srv := net.Pipe()
	defer cli.Close()
	done := make(chan struct{})
	go func() {
		s.servePipelined(srv, nil)
		close(done)
	}()
	// Two requests on the control tenant (window 1): the first parks in a
	// worker on the gate, the second parks in the reader's admission wait.
	if err := wire.WriteTaggedFrame(cli, wire.OpStats, 1, nil); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteTaggedFrame(cli, wire.OpStats, 2, nil); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "second request parked in admission", func() bool {
		return s.Frontend().AdmissionWaits.Load() >= 1
	})
	// Release the first request. Its response write hits a peer that never
	// reads; the write deadline must fire, tear the connection down, and
	// unwind everything — before the fix this test hangs here.
	close(gate)
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("connection leaked: writer (or admission wait) still parked")
	}
	if s.Frontend().WriteTimeouts.Load() == 0 {
		t.Fatalf("write deadline not attributed: %s", s.Frontend().Summary())
	}
	s.budget.mu.Lock()
	used := s.budget.used
	s.budget.mu.Unlock()
	if used != 0 {
		t.Fatalf("byte budget leaked %d bytes", used)
	}
}

// TestIdleTimeoutReapsDeadConn: a client that dies mid-frame (or goes
// silent) is reaped by the idle deadline instead of pinning its goroutines
// forever.
func TestIdleTimeoutReapsDeadConn(t *testing.T) {
	s, addr := startServer(t, Config{IdleTimeout: 50 * time.Millisecond})
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	// Torn frame: promise 100 bytes, send 5, then just sit there.
	if _, err := conn.Write([]byte{100, 0, 0, 0, 5}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "idle reap", func() bool {
		return s.Frontend().IdleTimeouts.Load() == 1
	})
}

// TestAcceptBackoffResets: the transient-Accept backoff must reset after a
// successful accept — a burst of failures in the past must not tax future
// ones with an already-escalated delay.
func TestAcceptBackoffResets(t *testing.T) {
	pair, err := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer inner.Close()
	l := &flakyListener{Listener: inner, failures: 4}
	s := New(pair, controller.Primary)
	go func() {
		//lint:ignore errdrop test goroutine; Serve's nil return on close is asserted elsewhere
		s.Serve(l)
	}()

	dialOK := func() {
		c, err := client.Dial(inner.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		if _, err := c.ListVolumes(); err != nil {
			t.Fatal(err)
		}
		c.Close()
	}
	dialOK() // burns the first 4 failures: 5+10+20+40 = 75 ms of backoff
	// Second burst: if backoff reset on the successful accept, the ladder
	// restarts at 5 ms and the burst clears in ~75 ms; if it kept escalating
	// it would pay 80+160+320+640 ms.
	l.mu.Lock()
	l.failures = 4
	l.mu.Unlock()
	start := time.Now()
	dialOK()
	waitFor(t, "second failure burst consumed", func() bool {
		return s.Frontend().AcceptRetries.Load() == 8
	})
	if elapsed := time.Since(start); elapsed > 800*time.Millisecond {
		t.Fatalf("second accept burst took %v: backoff did not reset", elapsed)
	}
}

// TestSessionIdempotentWriteOverWire: a session negotiated at hello makes
// OpWriteIdem replays no-ops — including a replay sent over a SECOND
// connection resuming the same session, the reconnect-after-failure shape.
func TestSessionIdempotentWriteOverWire(t *testing.T) {
	pair, err := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s := NewWithConfig(pair, controller.Primary, Config{})
	go s.Serve(l)
	addr := l.Addr().String()

	c1, err := client.DialSession(addr, net.Dial, 0, 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c1.Close()
	if c1.Session() == 0 {
		t.Fatal("no session granted")
	}
	vol, err := c1.CreateVolume("v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	copy(data, "idempotent payload")
	if err := c1.WriteIdem(1, vol, 0, data); err != nil {
		t.Fatal(err)
	}
	// Replay on the same connection: suppressed.
	if err := c1.WriteIdem(1, vol, 0, data); err != nil {
		t.Fatal(err)
	}
	// Replay over a fresh connection resuming the session: still suppressed.
	c2, err := client.DialSession(addr, net.Dial, c1.Session(), 0)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	if c2.Session() != c1.Session() {
		t.Fatalf("resume changed session: %d -> %d", c1.Session(), c2.Session())
	}
	if err := c2.WriteIdem(1, vol, 0, data); err != nil {
		t.Fatal(err)
	}
	tab := pair.Sessions()
	if tab.ReplaysSuppressed.Load() != 2 || tab.AppliedOK.Load() != 1 {
		t.Fatalf("suppressed=%d appliedOK=%d", tab.ReplaysSuppressed.Load(), tab.AppliedOK.Load())
	}
	got, err := c2.ReadAt(vol, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back mismatch: %v", err)
	}
	// A plain pipelined connection (no session) is refused OpWriteIdem.
	c3, err := client.DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c3.Close()
	if err := c3.WriteIdem(2, vol, 0, data); err == nil {
		t.Fatal("session-less idempotent write accepted")
	}
}

// TestHeartbeatFailover: the full server-side HA loop. The secondary's
// monitor notices the primary's silence, runs the takeover, and from then
// on the fenced primary answers CodeNotPrimary while the survivor serves.
func TestHeartbeatFailover(t *testing.T) {
	pair, err := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	mk := func(via controller.Role) (*Server, string) {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		s := NewWithConfig(pair, via, Config{})
		go s.Serve(l)
		return s, l.Addr().String()
	}
	prim, primAddr := mk(controller.Primary)
	sec, secAddr := mk(controller.Secondary)

	ha := HAConfig{Interval: 10 * time.Millisecond, Silence: 80 * time.Millisecond}
	stopBeat := prim.StartBeat(ha)
	defer stopBeat()
	stopMon := sec.StartMonitor(ha)
	defer stopMon()

	c, err := client.DialPipelined(primAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vol, err := c.CreateVolume("v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	copy(data, "survives failover")
	if err := c.WriteAt(vol, 0, data); err != nil {
		t.Fatal(err)
	}

	// Kill the primary: heartbeats stop, the engine's memory is gone.
	stopBeat()
	pair.KillPrimary()
	waitFor(t, "monitor-driven failover", func() bool {
		return pair.Active() == controller.Secondary
	})
	if sec.Frontend().Failovers.Load() != 1 {
		t.Fatalf("Failovers = %d", sec.Frontend().Failovers.Load())
	}
	// The survivor serves the data.
	c2, err := client.DialPipelined(secAddr)
	if err != nil {
		t.Fatal(err)
	}
	defer c2.Close()
	got, err := c2.ReadAt(vol, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("post-failover read mismatch: %v", err)
	}
	// The fenced ex-primary redirects with CodeNotPrimary.
	_, err = c.ReadAt(vol, 0, len(data))
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeNotPrimary {
		t.Fatalf("fenced primary answered %v, want CodeNotPrimary", err)
	}
	if prim.Frontend().NotPrimaryRedirects.Load() == 0 {
		t.Fatal("redirect not counted")
	}
}
