// Heartbeat-driven failover: the glue that turns a controller.Pair plus two
// servers into an HA array. The active controller's server publishes a
// wall-clock heartbeat (StartBeat); the peer's server watches it
// (StartMonitor) and, after a silence longer than the configured threshold,
// runs the takeover — recovery from the shared shelf, then fencing the
// corpse. Clients see a CodeRetryable/CodeNotPrimary window while this runs
// and re-resolve to the survivor; the paper's budget for the whole episode
// is the 30-second initiator I/O timeout (§4.3).
package server

import (
	"sync"
	"time"

	"purity/internal/controller"
)

// HAConfig tunes the heartbeat and the takeover trigger.
type HAConfig struct {
	// Interval between heartbeats (and between monitor checks).
	Interval time.Duration
	// Silence is how long the active controller's heartbeat may be stale
	// before the peer declares it dead and takes over. Must comfortably
	// exceed Interval or a scheduling hiccup looks like a death.
	Silence time.Duration
}

// DefaultHAConfig scales the paper's multi-second detection down to test
// timescales while keeping the Silence >> Interval shape.
func DefaultHAConfig() HAConfig {
	return HAConfig{Interval: 25 * time.Millisecond, Silence: 250 * time.Millisecond}
}

func (c HAConfig) normalize() HAConfig {
	if c.Interval <= 0 {
		c.Interval = DefaultHAConfig().Interval
	}
	if c.Silence <= 0 {
		c.Silence = DefaultHAConfig().Silence
	}
	return c
}

// StartBeat publishes this server's liveness to the pair on a ticker. The
// returned stop is idempotent; the beater also stops when the server
// drains, so a Shutdown goes silent and lets the peer take over.
func (s *Server) StartBeat(cfg HAConfig) (stop func()) {
	cfg = cfg.normalize()
	s.pair.Beat(s.via)
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				s.pair.Beat(s.via)
			case <-done:
				return
			case <-s.drainCh:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}

// StartMonitor watches the peer controller's heartbeat and takes over when
// it goes silent. A takeover that loses the race (or finds the peer still
// alive — a delayed beat, not a death) is a no-op and the monitor keeps
// watching. The returned stop is idempotent; the monitor also stops when
// this server drains.
func (s *Server) StartMonitor(cfg HAConfig) (stop func()) {
	cfg = cfg.normalize()
	peer := controller.Primary
	if s.via == controller.Primary {
		peer = controller.Secondary
	}
	done := make(chan struct{})
	var once sync.Once
	go func() {
		t := time.NewTicker(cfg.Interval)
		defer t.Stop()
		for {
			select {
			case <-t.C:
				if s.pair.Active() != peer {
					continue // this side already owns the array
				}
				if s.pair.SinceBeat(peer) < cfg.Silence {
					continue
				}
				start := time.Now()
				if _, _, err := s.pair.FailoverTo(s.via, s.now()); err != nil {
					// Peer still alive (the beat was merely late) or another
					// monitor won the race: keep watching.
					continue
				}
				s.tel.Failovers.Inc()
				s.tel.FailoverNanos.Add(time.Since(start).Nanoseconds())
			case <-done:
				return
			case <-s.drainCh:
				return
			}
		}
	}()
	return func() { once.Do(func() { close(done) }) }
}
