package server

// Tests for the tagged pipelined front end: out-of-order completion,
// admission control, protocol-violation handling, and the wire-health
// counters — including the adversarial cases (duplicate tags, oversized
// reads, torn frames) that a public block front end must survive.

import (
	"bytes"
	"errors"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"purity/internal/client"
	"purity/internal/controller"
	"purity/internal/core"
	"purity/internal/sim"
	"purity/internal/wire"
)

// startServer brings up one server with the given config on loopback and
// returns it with its address.
func startServer(t *testing.T, cfg Config) (*Server, string) {
	t.Helper()
	pair, err := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s := NewWithConfig(pair, controller.Primary, cfg)
	go func() {
		if err := s.Serve(l); err != nil {
			t.Errorf("Serve: %v", err)
		}
	}()
	return s, l.Addr().String()
}

// waitFor polls until cond holds or the deadline passes.
func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

func TestPipelinedEndToEnd(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := client.DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if !c.Pipelined() {
		t.Fatal("pipelined dial fell back to legacy")
	}

	id, err := c.CreateVolume("pipe-vol", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 64<<10)
	sim.NewRand(3).Bytes(data)
	if err := c.WriteAt(id, 0, data); err != nil {
		t.Fatal(err)
	}
	got, err := c.ReadAt(id, 0, len(data))
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("read back mismatch: %v", err)
	}
	snap, err := c.Snapshot(id, "s")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Clone(snap, "c"); err != nil {
		t.Fatal(err)
	}
	vols, err := c.ListVolumes()
	if err != nil || len(vols) != 3 {
		t.Fatalf("ListVolumes = %d, %v", len(vols), err)
	}
	stats, err := c.Stats()
	if err != nil || len(stats) == 0 {
		t.Fatalf("Stats: %v", err)
	}
	if s.Frontend().PipelinedConns.Load() != 1 {
		t.Fatalf("PipelinedConns = %d", s.Frontend().PipelinedConns.Load())
	}
}

// TestOutOfOrderCompletion proves the tentpole property: a slow read does
// NOT block a later fast read on the same connection. The first read is
// held at the dispatch boundary; the second must complete while the first
// is still stuck.
func TestOutOfOrderCompletion(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := client.DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	slowVol, err := c.CreateVolume("slow", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	fastVol, err := c.CreateVolume("fast", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 8192)
	if err := c.WriteAt(slowVol, 0, buf); err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(fastVol, 0, buf); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	s.stall = func(op byte, payload []byte) {
		if op == wire.OpRead && tenantOf(op, payload) == slowVol {
			<-gate
		}
	}
	defer func() { s.stall = nil }()

	slowDone := make(chan error, 1)
	go func() {
		_, err := c.ReadAt(slowVol, 0, 4096)
		slowDone <- err
	}()
	// The fast read must complete while the slow one is gated.
	fastDone := make(chan error, 1)
	go func() {
		_, err := c.ReadAt(fastVol, 0, 4096)
		fastDone <- err
	}()
	select {
	case err := <-fastDone:
		if err != nil {
			t.Fatalf("fast read: %v", err)
		}
	case err := <-slowDone:
		t.Fatalf("slow read completed first (err=%v) — pipelining is lock-step", err)
	case <-time.After(5 * time.Second):
		t.Fatal("fast read blocked behind the gated slow read")
	}
	close(gate)
	if err := <-slowDone; err != nil {
		t.Fatalf("slow read after release: %v", err)
	}
}

// TestPipelinedInterleavedInflight drives 64 concurrent in-flight requests
// over ONE connection — run under -race in check.sh, this is the data-race
// canary for the reader/worker/writer machinery.
func TestPipelinedInterleavedInflight(t *testing.T) {
	_, addr := startServer(t, Config{Workers: 8, QueueDepth: 16})
	c, err := client.DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()

	// Two tenants, so tenant windows interleave too.
	vols := make([]uint64, 2)
	for i := range vols {
		if vols[i], err = c.CreateVolume(fmt.Sprintf("v%d", i), 8<<20); err != nil {
			t.Fatal(err)
		}
	}
	const workers = 64
	const opsPer = 8
	var wg sync.WaitGroup
	errs := make(chan error, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			vol := vols[w%len(vols)]
			// Distinct 8 KiB region per worker per volume.
			off := int64(w/len(vols)) * 8192
			want := make([]byte, 8192)
			sim.NewRand(uint64(w + 1)).Bytes(want)
			for i := 0; i < opsPer; i++ {
				if err := c.WriteAt(vol, off, want); err != nil {
					errs <- fmt.Errorf("worker %d write: %w", w, err)
					return
				}
				got, err := c.ReadAt(vol, off, len(want))
				if err != nil {
					errs <- fmt.Errorf("worker %d read: %w", w, err)
					return
				}
				if !bytes.Equal(got, want) {
					errs <- fmt.Errorf("worker %d: data mismatch", w)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}
}

// TestDuplicateTagKillsConnection: reusing an in-flight tag is a protocol
// violation — the server answers with CodeDuplicateTag and drops the
// connection rather than emitting two responses with the same tag.
func TestDuplicateTagKillsConnection(t *testing.T) {
	s, addr := startServer(t, Config{})

	gate := make(chan struct{})
	s.stall = func(op byte, payload []byte) {
		if op == wire.OpStats {
			<-gate
		}
	}
	defer func() { s.stall = nil }()

	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	var e wire.Enc
	if err := wire.WriteFrame(conn, wire.OpHello, e.U64(wire.ProtoTagged).B); err != nil {
		t.Fatal(err)
	}
	if _, _, err := wire.ReadFrame(conn); err != nil {
		t.Fatal(err)
	}
	// First request parks in a worker on the gate; the second reuses its
	// tag while it is still in flight.
	if err := wire.WriteTaggedFrame(conn, wire.OpStats, 42, nil); err != nil {
		t.Fatal(err)
	}
	if err := wire.WriteTaggedFrame(conn, wire.OpStats, 42, nil); err != nil {
		t.Fatal(err)
	}
	op, tag, payload, err := wire.ReadTaggedFrame(conn)
	if err != nil {
		t.Fatal(err)
	}
	if op != wire.OpStats || tag != 42 {
		t.Fatalf("op=%d tag=%d", op, tag)
	}
	_, rerr := wire.ParseTaggedResponse(payload)
	var re *wire.RemoteError
	if !errors.As(rerr, &re) || re.Code != wire.CodeDuplicateTag {
		t.Fatalf("duplicate tag response: %v", rerr)
	}
	if got := s.Frontend().DuplicateTags.Load(); got != 1 {
		t.Fatalf("DuplicateTags = %d", got)
	}
	// Release the parked request; its response flushes, then the
	// connection closes.
	close(gate)
	if _, _, _, err := wire.ReadTaggedFrame(conn); err != nil {
		t.Fatalf("parked request's response lost: %v", err)
	}
	if _, _, _, err := wire.ReadTaggedFrame(conn); err == nil {
		t.Fatal("connection survived a duplicate tag")
	}
}

// TestOversizedReadRejected: the client-supplied read length is clamped
// before it can size an allocation; the connection survives.
func TestOversizedReadRejected(t *testing.T) {
	s, addr := startServer(t, Config{})
	c, err := client.DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.CreateVolume("v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	_, err = c.ReadAt(id, 0, wire.MaxReadLen+4096)
	var re *wire.RemoteError
	if !errors.As(err, &re) || re.Code != wire.CodeTooLarge {
		t.Fatalf("oversized read: %v", err)
	}
	if got := s.Frontend().RejectedReads.Load(); got != 1 {
		t.Fatalf("RejectedReads = %d", got)
	}
	// The connection is still healthy.
	if _, err := c.ListVolumes(); err != nil {
		t.Fatalf("connection dead after rejected read: %v", err)
	}
}

// TestLegacyOversizedReadRejected: the same clamp guards the v1 path.
func TestLegacyOversizedReadRejected(t *testing.T) {
	_, addr := startServer(t, Config{})
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	id, err := c.CreateVolume("v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ReadAt(id, 0, wire.MaxReadLen+4096); err == nil {
		t.Fatal("oversized legacy read accepted")
	}
	if _, err := c.ListVolumes(); err != nil {
		t.Fatalf("connection dead after rejected read: %v", err)
	}
}

// flakyListener fails the first n Accepts with a transient error.
type flakyListener struct {
	net.Listener
	mu       sync.Mutex
	failures int
}

func (l *flakyListener) Accept() (net.Conn, error) {
	l.mu.Lock()
	if l.failures > 0 {
		l.failures--
		l.mu.Unlock()
		return nil, &net.OpError{Op: "accept", Net: "tcp", Err: errors.New("connection aborted")}
	}
	l.mu.Unlock()
	return l.Listener.Accept()
}

// TestServeSurvivesTransientAcceptErrors: a burst of EMFILE/ECONNABORTED
// style failures must not kill the listener; Serve exits only when the
// listener closes, and then cleanly.
func TestServeSurvivesTransientAcceptErrors(t *testing.T) {
	pair, err := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	inner, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	l := &flakyListener{Listener: inner, failures: 3}
	s := New(pair, controller.Primary)
	serveDone := make(chan error, 1)
	go func() { serveDone <- s.Serve(l) }()

	// The listener misbehaved 3 times; a client must still get through.
	c, err := client.DialPipelined(inner.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListVolumes(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	if got := s.Frontend().AcceptRetries.Load(); got != 3 {
		t.Fatalf("AcceptRetries = %d", got)
	}
	inner.Close()
	select {
	case err := <-serveDone:
		if err != nil {
			t.Fatalf("Serve returned %v on clean close", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Serve did not exit after listener close")
	}
}

// TestWireHealthCounters: torn, oversized and malformed frames from
// hostile/buggy initiators land in distinct counters instead of vanishing.
func TestWireHealthCounters(t *testing.T) {
	s, addr := startServer(t, Config{})

	// Abnormal disconnect: header promises 100 bytes, client vanishes.
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{100, 0, 0, 0, 5}); err != nil {
		t.Fatal(err)
	}
	conn.Close()
	waitFor(t, "abnormal disconnect count", func() bool {
		return s.Frontend().AbnormalDisconnects.Load() == 1
	})

	// Oversized: forged 4 GiB frame header.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0xff, 0xff, 0xff, 0xff}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "oversized frame count", func() bool {
		return s.Frontend().OversizedFrames.Load() == 1
	})
	conn.Close()

	// Malformed: zero-length frame.
	conn, err = net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := conn.Write([]byte{0, 0, 0, 0}); err != nil {
		t.Fatal(err)
	}
	waitFor(t, "malformed frame count", func() bool {
		return s.Frontend().MalformedFrames.Load() == 1
	})
	conn.Close()

	// Clean EOF right after a complete exchange counts nothing.
	c, err := client.Dial(addr)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.ListVolumes(); err != nil {
		t.Fatal(err)
	}
	c.Close()
	waitFor(t, "legacy conn count", func() bool {
		return s.Frontend().LegacyConns.Load() == 1
	})
	if got := s.Frontend().AbnormalDisconnects.Load(); got != 1 {
		t.Fatalf("clean EOF counted as abnormal (%d)", got)
	}
}

// TestAdmissionWindowBackpressure: a tenant beyond its in-flight window
// stalls the connection (backpressure) instead of queueing unboundedly, and
// the stall is counted.
func TestAdmissionWindowBackpressure(t *testing.T) {
	s, addr := startServer(t, Config{Workers: 4, TenantWindow: 2, QueueDepth: 16})
	c, err := client.DialPipelined(addr)
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	vol, err := c.CreateVolume("v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	if err := c.WriteAt(vol, 0, make([]byte, 8192)); err != nil {
		t.Fatal(err)
	}

	gate := make(chan struct{})
	s.stall = func(op byte, payload []byte) {
		if op == wire.OpRead {
			<-gate
		}
	}
	defer func() { s.stall = nil }()

	const n = 3 // window is 2: the third read must wait for a slot
	done := make(chan error, n)
	for i := 0; i < n; i++ {
		go func() {
			_, err := c.ReadAt(vol, 0, 4096)
			done <- err
		}()
	}
	waitFor(t, "admission wait count", func() bool {
		return s.Frontend().AdmissionWaits.Load() >= 1
	})
	close(gate)
	for i := 0; i < n; i++ {
		if err := <-done; err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
	}
}
