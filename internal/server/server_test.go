package server

import (
	"bytes"
	"net"
	"testing"

	"purity/internal/client"
	"purity/internal/controller"
	"purity/internal/core"
	"purity/internal/sim"
)

// startPair brings up active-active servers on loopback and returns clients
// for both ports.
func startPair(t *testing.T) (*client.Client, *client.Client, *controller.Pair) {
	t.Helper()
	pair, err := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	dial := func(via controller.Role) *client.Client {
		l, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { l.Close() })
		go New(pair, via).Serve(l)
		c, err := client.Dial(l.Addr().String())
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { c.Close() })
		return c
	}
	return dial(controller.Primary), dial(controller.Secondary), pair
}

func TestEndToEndOverTCP(t *testing.T) {
	prim, sec, _ := startPair(t)

	id, err := prim.CreateVolume("net-vol", 4<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 128<<10)
	sim.NewRand(1).Bytes(data)
	if err := prim.WriteAt(id, 0, data); err != nil {
		t.Fatal(err)
	}

	// Active-active: the secondary port serves the same volumes.
	got, err := sec.ReadAt(id, 0, len(data))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("secondary port returned wrong data")
	}

	// Snapshot + clone over the wire.
	snap, err := sec.Snapshot(id, "s")
	if err != nil {
		t.Fatal(err)
	}
	cl, err := prim.Clone(snap, "c")
	if err != nil {
		t.Fatal(err)
	}
	if err := prim.WriteAt(cl, 0, make([]byte, 4096)); err != nil {
		t.Fatal(err)
	}
	got, err = prim.ReadAt(snap, 0, 4096)
	if err != nil || !bytes.Equal(got, data[:4096]) {
		t.Fatal("snapshot disturbed over the wire")
	}

	// Listing and name resolution.
	vols, err := prim.ListVolumes()
	if err != nil || len(vols) != 3 {
		t.Fatalf("ListVolumes = %d, %v", len(vols), err)
	}
	oid, size, err := sec.OpenVolume("net-vol")
	if err != nil || oid != id || size != 4<<20 {
		t.Fatalf("OpenVolume = %d/%d, %v", oid, size, err)
	}
	if _, _, err := sec.OpenVolume("nope"); err == nil {
		t.Fatal("missing volume resolved")
	}

	// Maintenance ops.
	if err := prim.Flush(); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.GC(); err != nil {
		t.Fatal(err)
	}
	stats, err := prim.Stats()
	if err != nil || len(stats) == 0 {
		t.Fatalf("Stats: %q, %v", stats, err)
	}

	// Deletion and error propagation.
	if err := prim.Delete(cl); err != nil {
		t.Fatal(err)
	}
	if _, err := prim.ReadAt(cl, 0, 4096); err == nil {
		t.Fatal("read of deleted volume succeeded over the wire")
	}
}

func TestServerRejectsGarbageOpcode(t *testing.T) {
	prim, _, _ := startPair(t)
	// The client never sends bad opcodes; poke the server directly.
	_ = prim
	pair, _ := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	s := New(pair, controller.Primary)
	if _, err := s.dispatch(nil, 0xff, nil); err == nil {
		t.Fatal("unknown opcode accepted")
	}
	// Truncated payloads error rather than panic.
	if _, err := s.dispatch(nil, 1, []byte{1, 2}); err == nil {
		t.Fatal("truncated payload accepted")
	}
}
