// Package server exposes an array's volumes over TCP using the wire
// protocol — the repository's stand-in for the paper's iSCSI/FibreChannel
// front end (§3, §4.1). Run two servers over one controller.Pair (one per
// Role) to get the active-active behaviour: clients may connect to either
// port; the secondary forwards to the primary at an interconnect-latency
// cost.
//
// Connections come in two flavours (negotiated by the first frame, see
// package wire): legacy v1 lock-step request/reply, served exactly as
// before, and the tagged v2 protocol, where one connection carries many
// in-flight requests. A v2 connection is three kinds of goroutine — a
// reader that admits requests (per-tenant in-flight windows plus a global
// byte budget, both exerting backpressure rather than dropping), a bounded
// worker set that dispatches into the engine out of order, and a single
// writer that serializes completions back onto the socket so response
// frames can never interleave. The engine's write path runs compression and
// dedup hashing before taking its lock (core.Array.WriteAtConcurrent), so N
// in-flight requests use N cores for the CPU-heavy stages; with
// Config.CommitLanes > 1 the commit section itself shards into per-volume
// lanes (DESIGN.md, "Sharded commit").
//
// Scheduling honours the paper's §4.4 tail SLO: while the engine's governor
// reports the foreground read p99.9 over budget, workers drain the
// foreground read queue before anything else.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"time"

	"purity/internal/controller"
	"purity/internal/core"
	"purity/internal/iosched"
	"purity/internal/sim"
	"purity/internal/telemetry"
	"purity/internal/wire"
)

// Config tunes the pipelined front end. The zero value takes defaults.
type Config struct {
	// Workers bounds the per-connection dispatch goroutines (in-flight
	// requests actually executing; more are queued).
	Workers int
	// QueueDepth bounds each per-connection dispatch queue; a full queue
	// backpressures the connection's reader.
	QueueDepth int
	// TenantWindow caps in-flight requests per tenant (per volume) on one
	// connection; an over-window tenant backpressures the connection.
	TenantWindow int
	// MaxInflightBytes is the global (cross-connection) budget for
	// in-flight request+response payload bytes.
	MaxInflightBytes int64
	// Pace, when true, holds each response until the engine's simulated
	// service time has elapsed in wall time, so the served array exhibits
	// its device model's latency instead of raw loopback+CPU speed. The
	// lock-step v1 protocol serializes these waits; the tagged v2 protocol
	// overlaps them — which is the whole case for pipelining.
	Pace bool
}

// DefaultConfig sizes the front end for the scaled-down arrays in this
// repository.
func DefaultConfig() Config {
	return Config{
		Workers:          4,
		QueueDepth:       64,
		TenantWindow:     32,
		MaxInflightBytes: 64 << 20,
	}
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantWindow <= 0 {
		c.TenantWindow = 32
	}
	if c.MaxInflightBytes <= 0 {
		c.MaxInflightBytes = 64 << 20
	}
	return c
}

// Server serves one controller's port.
type Server struct {
	pair *controller.Pair
	via  controller.Role
	cfg  Config

	epoch  time.Time // wall-clock origin for the simulated timeline
	tel    *telemetry.Frontend
	budget *byteBudget

	// stall, when set, runs in a worker just before dispatch — a test hook
	// for forcing a request to be slow so out-of-order completion and
	// admission backpressure are provable.
	stall func(op byte, payload []byte)
}

// New returns a server for the given controller of a pair.
func New(pair *controller.Pair, via controller.Role) *Server {
	return NewWithConfig(pair, via, DefaultConfig())
}

// NewWithConfig returns a server with explicit front-end tuning.
func NewWithConfig(pair *controller.Pair, via controller.Role, cfg Config) *Server {
	cfg = cfg.normalize()
	return &Server{
		pair:   pair,
		via:    via,
		cfg:    cfg,
		epoch:  time.Now(),
		tel:    &telemetry.Frontend{},
		budget: newByteBudget(cfg.MaxInflightBytes),
	}
}

// Frontend exposes the server's wire-level health counters.
func (s *Server) Frontend() *telemetry.Frontend { return s.tel }

// now maps wall time onto the simulated timeline, so a served array's
// device model experiences realistic inter-arrival times.
func (s *Server) now() sim.Time { return sim.Time(time.Since(s.epoch).Nanoseconds()) }

// governor returns the live engine's SLO governor (nil-safe: a nil Governor
// never reports Threatened).
func (s *Server) governor() *iosched.Governor {
	if a := s.pair.Array(); a != nil {
		return a.Governor()
	}
	return nil
}

// Serve accepts connections until the listener closes. Transient Accept
// failures (EMFILE under connection storms, ECONNABORTED races) no longer
// kill the listener: they retry with capped exponential backoff, and Serve
// returns only once the listener itself is closed.
func (s *Server) Serve(l net.Listener) error {
	var backoff time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			s.tel.AcceptRetries.Inc()
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		go s.handle(conn)
	}
}

// handle classifies a new connection by its first frame: an OpHello
// negotiates the protocol version (and usually upgrades to the tagged
// pipelined mode); anything else is a legacy v1 initiator and is served
// lock-step, unchanged.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	op, payload, err := wire.ReadFrame(conn)
	if err != nil {
		s.countReadErr(err)
		return
	}
	if op == wire.OpHello {
		d := wire.Dec{B: payload}
		ver := d.U64()
		if !d.OK() {
			s.tel.MalformedFrames.Inc()
			return
		}
		accepted := wire.ProtoSync
		if ver >= wire.ProtoTagged {
			accepted = wire.ProtoTagged
		}
		var e wire.Enc
		if wire.RespondOK(conn, wire.OpHello, e.U64(accepted).B) != nil {
			s.tel.AbnormalDisconnects.Inc()
			return
		}
		if accepted == wire.ProtoTagged {
			s.tel.PipelinedConns.Inc()
			s.servePipelined(conn)
			return
		}
		s.tel.LegacyConns.Inc()
		s.serveLegacy(conn, 0, nil, false)
		return
	}
	s.tel.LegacyConns.Inc()
	s.serveLegacy(conn, op, payload, true)
}

// serveLegacy is the v1 lock-step loop. When pending is true the first
// request was already read by handle during protocol sniffing.
func (s *Server) serveLegacy(conn net.Conn, op byte, payload []byte, pending bool) {
	for {
		if !pending {
			var err error
			op, payload, err = wire.ReadFrame(conn)
			if err != nil {
				s.countReadErr(err)
				return
			}
		}
		pending = false
		resp, err := s.dispatch(op, payload)
		if err != nil {
			if wire.RespondErr(conn, op, err) != nil {
				s.tel.AbnormalDisconnects.Inc()
				return
			}
			continue
		}
		if wire.RespondOK(conn, op, resp) != nil {
			s.tel.AbnormalDisconnects.Inc()
			return
		}
	}
}

// countReadErr attributes a connection-terminating read failure: clean EOFs
// at a frame boundary are normal; everything else lands in a counter that
// used to not exist (the old server dropped all of these silently).
func (s *Server) countReadErr(err error) {
	switch {
	case err == nil || errors.Is(err, io.EOF):
		// Clean shutdown between frames.
	case errors.Is(err, wire.ErrFrameTooLarge):
		s.tel.OversizedFrames.Inc()
	case errors.Is(err, wire.ErrBadFrame):
		s.tel.MalformedFrames.Inc()
	case errors.Is(err, net.ErrClosed):
		// We closed it (server shutdown or a writer failure already
		// counted).
	default:
		// Partial frame, connection reset, timeout: the client vanished
		// mid-stream.
		s.tel.AbnormalDisconnects.Inc()
	}
}

// Typed dispatch failures, so tagged responses can carry structured codes.
var (
	// ErrReadTooLarge rejects a client-supplied read length beyond
	// wire.MaxReadLen. The length field is attacker controlled; before this
	// check a single 17-byte frame could demand a multi-GiB allocation.
	ErrReadTooLarge = errors.New("server: read length exceeds wire.MaxReadLen")
	// ErrUnknownOp rejects an unrecognized opcode.
	ErrUnknownOp = errors.New("server: unknown opcode")
)

// errCode maps a dispatch failure to its wire error code.
func errCode(err error) uint32 {
	var d *wire.RemoteError
	switch {
	case errors.Is(err, ErrReadTooLarge):
		return wire.CodeTooLarge
	case errors.Is(err, ErrUnknownOp):
		return wire.CodeUnknownOp
	case errors.Is(err, io.ErrUnexpectedEOF):
		return wire.CodeBadPayload
	case errors.As(err, &d):
		return d.Code
	default:
		return wire.CodeInternal
	}
}

// pace holds the caller until a data-path op's simulated completion time has
// elapsed in wall time (no-op unless Config.Pace). The cap bounds the damage
// of a simulated-device convoy: pacing demonstrates latency, it must not
// wedge a worker.
func (s *Server) pace(at, done sim.Time) {
	if !s.cfg.Pace || done <= at {
		return
	}
	d := time.Duration(done - at)
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	time.Sleep(d)
}

// badPayload counts an undecodable request payload and propagates its
// decode error.
func (s *Server) badPayload(err error) error {
	s.tel.MalformedFrames.Inc()
	return err
}

// dispatch runs one request against the engine. Called concurrently from
// every connection goroutine and worker; the Pair and the engine
// synchronize internally.
func (s *Server) dispatch(op byte, payload []byte) ([]byte, error) {
	at := s.now()
	a := s.pair.Array()
	if a == nil {
		return nil, controller.ErrUnavailable
	}
	d := wire.Dec{B: payload}
	switch op {
	case wire.OpCreateVolume:
		name := d.Str()
		size := d.U64()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		id, _, err := a.CreateVolume(at, name, int64(size))
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpOpenVolume:
		name := d.Str()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		infos, _, err := a.Volumes(at)
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			if info.Name == name {
				var e wire.Enc
				return e.U64(uint64(info.ID)).U64(uint64(info.SizeBytes)).B, nil
			}
		}
		return nil, core.ErrNoSuchVolume

	case wire.OpListVolumes:
		infos, _, err := a.Volumes(at)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		e.U64(uint64(len(infos)))
		for _, info := range infos {
			snap := uint64(0)
			if info.Snapshot {
				snap = 1
			}
			e.U64(uint64(info.ID)).Str(info.Name).U64(uint64(info.SizeBytes)).U64(snap)
		}
		return e.B, nil

	case wire.OpRead:
		vol := d.U64()
		off := d.U64()
		n := d.U64()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		// Clamp the client-supplied length BEFORE it sizes an allocation:
		// n is attacker controlled and anything over MaxReadLen could not
		// be framed in a response anyway.
		if n > wire.MaxReadLen {
			s.tel.RejectedReads.Inc()
			return nil, fmt.Errorf("%w: %d > %d", ErrReadTooLarge, n, wire.MaxReadLen)
		}
		data, done, err := s.pair.ReadAt(at, s.via, core.VolumeID(vol), int64(off), int(n))
		if err != nil {
			return nil, err
		}
		s.pace(at, done)
		var e wire.Enc
		return e.Bytes(data).B, nil

	case wire.OpWrite:
		vol := d.U64()
		off := d.U64()
		// Dec.Bytes aliases the frame buffer; the engine retains write data
		// beyond this dispatch (NVRAM mirrors, dedup candidates), and v2
		// frames are handled by concurrent workers — copy at the boundary.
		data := append([]byte(nil), d.Bytes()...)
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		done, err := s.pair.WriteAt(at, s.via, core.VolumeID(vol), int64(off), data)
		if err != nil {
			return nil, err
		}
		s.pace(at, done)
		return nil, nil

	case wire.OpSnapshot:
		vol := d.U64()
		name := d.Str()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		id, _, err := a.Snapshot(at, core.VolumeID(vol), name)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpClone:
		snap := d.U64()
		name := d.Str()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		id, _, err := a.Clone(at, core.VolumeID(snap), name)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpDelete:
		vol := d.U64()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		_, err := a.Delete(at, core.VolumeID(vol))
		return nil, err

	case wire.OpStats:
		st := a.Stats()
		gov := a.Governor()
		text := fmt.Sprintf(
			"writes=%d reads=%d\nwrite latency: %s\nread latency: %s\n"+
				"reduction=%.2fx (logical=%d physical=%d dedup=%d)\n"+
				"dedup hits=%d misses=%d\nsegments=%d frontierAUs=%d freeAUs=%d\n"+
				"gc runs=%d checkpoints=%d frontier writes=%d\n"+
				"flash: host W=%d flash W=%d erases=%d\n"+
				"slo: budget=%v p99.9=%v threatened=%v deferrals=%d scrub deferrals=%d\n"+
				"frontend: %s\n",
			st.Writes, st.Reads,
			st.WriteLatency.Summary(), st.ReadLatency.Summary(),
			st.ReductionRatio, st.Reduction.LogicalBytes, st.Reduction.PhysicalBytes, st.Reduction.DedupBytes,
			st.DedupHits, st.DedupMisses, st.Segments, st.FrontierAUs, st.FreeAUs,
			st.GCRuns, st.Checkpoints, st.FrontierWrites,
			st.FlashStats.HostBytesWritten, st.FlashStats.FlashBytesWritten, st.FlashStats.Erases,
			gov.Budget(), gov.P999(), gov.Threatened(), gov.Deferrals(), st.ScrubDeferrals,
			s.tel.Summary(),
		)
		var e wire.Enc
		return e.Str(text).B, nil

	case wire.OpFlush:
		_, err := a.FlushAll(at)
		return nil, err

	case wire.OpGC:
		rep, _, err := a.RunGC(at)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.Str(fmt.Sprintf("%+v", rep)).B, nil

	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownOp, op)
	}
}
