// Package server exposes an array's volumes over TCP using the wire
// protocol — the repository's stand-in for the paper's iSCSI/FibreChannel
// front end (§3, §4.1). Run two servers over one controller.Pair (one per
// Role) to get the active-active behaviour: clients may connect to either
// port; the secondary forwards to the primary at an interconnect-latency
// cost.
//
// Connections come in two flavours (negotiated by the first frame, see
// package wire): legacy v1 lock-step request/reply, served exactly as
// before, and the tagged v2 protocol, where one connection carries many
// in-flight requests. A v2 connection is three kinds of goroutine — a
// reader that admits requests (per-tenant in-flight windows plus a global
// byte budget, both exerting backpressure rather than dropping), a bounded
// worker set that dispatches into the engine out of order, and a single
// writer that serializes completions back onto the socket so response
// frames can never interleave. The engine's write path runs compression and
// dedup hashing before taking its lock (core.Array.WriteAtConcurrent), so N
// in-flight requests use N cores for the CPU-heavy stages; with
// Config.CommitLanes > 1 the commit section itself shards into per-volume
// lanes (DESIGN.md, "Sharded commit").
//
// Scheduling honours the paper's §4.4 tail SLO: while the engine's governor
// reports the foreground read p99.9 over budget, workers drain the
// foreground read queue before anything else.
package server

import (
	"errors"
	"fmt"
	"io"
	"net"
	"os"
	"sync"
	"time"

	"purity/internal/controller"
	"purity/internal/core"
	"purity/internal/iosched"
	"purity/internal/sim"
	"purity/internal/telemetry"
	"purity/internal/wire"
)

// Config tunes the pipelined front end. The zero value takes defaults.
type Config struct {
	// Workers bounds the per-connection dispatch goroutines (in-flight
	// requests actually executing; more are queued).
	Workers int
	// QueueDepth bounds each per-connection dispatch queue; a full queue
	// backpressures the connection's reader.
	QueueDepth int
	// TenantWindow caps in-flight requests per tenant (per volume) on one
	// connection; an over-window tenant backpressures the connection.
	TenantWindow int
	// MaxInflightBytes is the global (cross-connection) budget for
	// in-flight request+response payload bytes.
	MaxInflightBytes int64
	// Pace, when true, holds each response until the engine's simulated
	// service time has elapsed in wall time, so the served array exhibits
	// its device model's latency instead of raw loopback+CPU speed. The
	// lock-step v1 protocol serializes these waits; the tagged v2 protocol
	// overlaps them — which is the whole case for pipelining.
	Pace bool
	// IdleTimeout bounds how long a connection may sit between frames (and
	// how long a torn frame may dribble). Without it a client that dies
	// mid-frame — or simply stops sending — pins its goroutines, and with
	// them any admission resources, forever. Negative falls back to the
	// wedge backstop (a deadline always fires eventually); zero takes the
	// default.
	IdleTimeout time.Duration
	// WriteTimeout bounds each response write. Without it a stalled client
	// that stops reading wedges the connection's single writer goroutine via
	// TCP backpressure, and every release callback queued behind the stuck
	// frame — tenant-window slots and in-flight bytes — leaks until the
	// socket dies on its own. Negative falls back to the wedge backstop;
	// zero takes the default.
	WriteTimeout time.Duration
}

// DefaultConfig sizes the front end for the scaled-down arrays in this
// repository.
func DefaultConfig() Config {
	return Config{
		Workers:          4,
		QueueDepth:       64,
		TenantWindow:     32,
		MaxInflightBytes: 64 << 20,
		IdleTimeout:      2 * time.Minute,
		WriteTimeout:     30 * time.Second,
	}
}

func (c Config) normalize() Config {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.QueueDepth <= 0 {
		c.QueueDepth = 64
	}
	if c.TenantWindow <= 0 {
		c.TenantWindow = 32
	}
	if c.MaxInflightBytes <= 0 {
		c.MaxInflightBytes = 64 << 20
	}
	if c.IdleTimeout == 0 {
		c.IdleTimeout = 2 * time.Minute
	}
	if c.WriteTimeout == 0 {
		c.WriteTimeout = 30 * time.Second
	}
	return c
}

// Server serves one controller's port.
type Server struct {
	pair *controller.Pair
	via  controller.Role
	cfg  Config

	epoch  time.Time // wall-clock origin for the simulated timeline
	tel    *telemetry.Frontend
	budget *byteBudget

	// Lifecycle state for graceful drain: every listener Serve is running on
	// and every live connection, so Shutdown can stop accepts and wake
	// parked readers. handlers counts connection goroutines.
	mu        sync.Mutex
	listeners map[net.Listener]struct{}
	conns     map[net.Conn]struct{}
	closed    bool
	drainCh   chan struct{}
	handlers  sync.WaitGroup

	// stall, when set, runs in a worker just before dispatch — a test hook
	// for forcing a request to be slow so out-of-order completion and
	// admission backpressure are provable.
	stall func(op byte, payload []byte)
}

// New returns a server for the given controller of a pair.
func New(pair *controller.Pair, via controller.Role) *Server {
	return NewWithConfig(pair, via, DefaultConfig())
}

// NewWithConfig returns a server with explicit front-end tuning.
func NewWithConfig(pair *controller.Pair, via controller.Role, cfg Config) *Server {
	cfg = cfg.normalize()
	return &Server{
		pair:      pair,
		via:       via,
		cfg:       cfg,
		epoch:     time.Now(),
		tel:       &telemetry.Frontend{},
		budget:    newByteBudget(cfg.MaxInflightBytes),
		listeners: make(map[net.Listener]struct{}),
		conns:     make(map[net.Conn]struct{}),
		drainCh:   make(chan struct{}),
	}
}

// Frontend exposes the server's wire-level health counters.
func (s *Server) Frontend() *telemetry.Frontend { return s.tel }

// now maps wall time onto the simulated timeline, so a served array's
// device model experiences realistic inter-arrival times.
func (s *Server) now() sim.Time { return sim.Time(time.Since(s.epoch).Nanoseconds()) }

// governor returns the live engine's SLO governor (nil-safe: a nil Governor
// never reports Threatened).
func (s *Server) governor() *iosched.Governor {
	if a := s.pair.Array(); a != nil {
		return a.Governor()
	}
	return nil
}

// Serve accepts connections until the listener closes. Transient Accept
// failures (EMFILE under connection storms, ECONNABORTED races) no longer
// kill the listener: they retry with capped exponential backoff — reset to
// zero by every successful accept, so one bad burst doesn't tax the next —
// and Serve returns only once the listener itself is closed.
func (s *Server) Serve(l net.Listener) error {
	if !s.trackListener(l) {
		//lint:ignore errdrop the server is already drained; refusing the listener is the point
		l.Close()
		return nil
	}
	defer s.untrackListener(l)
	var backoff time.Duration
	for {
		conn, err := l.Accept()
		if err != nil {
			if errors.Is(err, net.ErrClosed) {
				return nil
			}
			if backoff == 0 {
				backoff = 5 * time.Millisecond
			} else if backoff *= 2; backoff > time.Second {
				backoff = time.Second
			}
			s.tel.AcceptRetries.Inc()
			time.Sleep(backoff)
			continue
		}
		backoff = 0
		s.handlers.Add(1)
		go func() {
			defer s.handlers.Done()
			s.handle(conn)
		}()
	}
}

// trackListener registers a listener for Shutdown; false means the server
// has already drained and the listener must not accept.
func (s *Server) trackListener(l net.Listener) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.listeners[l] = struct{}{}
	return true
}

func (s *Server) untrackListener(l net.Listener) {
	s.mu.Lock()
	delete(s.listeners, l)
	s.mu.Unlock()
}

// trackConn registers a live connection for Shutdown; false means the
// server is draining and the connection must be refused.
func (s *Server) trackConn(c net.Conn) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return false
	}
	s.conns[c] = struct{}{}
	return true
}

func (s *Server) untrackConn(c net.Conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

// draining reports whether Shutdown has begun.
func (s *Server) draining() bool {
	select {
	case <-s.drainCh:
		return true
	default:
		return false
	}
}

// wedgeBackstop is the deadline used when the operator sets a timeout
// negative ("disabled"): long enough to never fire in legitimate traffic,
// but finite, so even a disabled timeout cannot let a dead peer pin a
// goroutine — and the admission slots it holds — for the life of the
// process. A deadline must exist on every path; §5's availability argument
// does not survive "unless configured otherwise".
const wedgeBackstop = 24 * time.Hour

// touchIdle arms the connection's idle deadline before a blocking read, on
// every path. After Shutdown begins the deadline is already-expired, so a
// reader that loops around for another frame exits instead of re-arming.
func (s *Server) touchIdle(conn net.Conn) {
	if s.draining() {
		//lint:ignore errdrop a conn that can't set deadlines is dying anyway; the read surfaces it
		conn.SetReadDeadline(time.Now())
		return
	}
	d := s.cfg.IdleTimeout
	if d <= 0 {
		d = wedgeBackstop
	}
	//lint:ignore errdrop a conn that can't set deadlines is dying anyway; the read surfaces it
	conn.SetReadDeadline(time.Now().Add(d))
}

// touchWrite arms the connection's per-response write deadline, on every
// path.
func (s *Server) touchWrite(conn net.Conn) {
	d := s.cfg.WriteTimeout
	if d <= 0 {
		d = wedgeBackstop
	}
	//lint:ignore errdrop a conn that can't set deadlines is dying anyway; the write surfaces it
	conn.SetWriteDeadline(time.Now().Add(d))
}

// Shutdown drains the server gracefully: listeners close (no new accepts),
// every parked reader and admission wait is woken so no new requests are
// admitted, workers finish what was already admitted, and each connection's
// writer flushes its completions — running every release, so no admission
// slot or in-flight byte survives the drain. Connections still alive after
// the timeout are force-closed. Idempotent; later calls return immediately.
func (s *Server) Shutdown(timeout time.Duration) error {
	start := time.Now()
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	close(s.drainCh)
	for l := range s.listeners {
		//lint:ignore errdrop closing the listener is best-effort; Serve exits on net.ErrClosed either way
		l.Close()
	}
	for c := range s.conns {
		// Expire the read deadline: a reader blocked in ReadFrame wakes with
		// a timeout, stops admitting, and starts the connection's drain.
		//lint:ignore errdrop a conn that can't set deadlines is torn down by the force-close below
		c.SetReadDeadline(time.Now())
	}
	s.mu.Unlock()
	// Wake admission waits parked on the global byte budget.
	s.budget.wake()

	done := make(chan struct{})
	go func() {
		s.handlers.Wait()
		close(done)
	}()
	var err error
	select {
	case <-done:
	case <-time.After(timeout):
		s.mu.Lock()
		for c := range s.conns {
			//lint:ignore errdrop force-close after the drain deadline; nothing left to report to
			c.Close()
		}
		s.mu.Unlock()
		<-done
		err = fmt.Errorf("server: drain exceeded %v; remaining connections force-closed", timeout)
	}
	s.tel.Drains.Inc()
	s.tel.DrainNanos.Add(time.Since(start).Nanoseconds())
	return err
}

// handle classifies a new connection by its first frame: an OpHello
// negotiates the protocol version (and usually upgrades to the tagged
// pipelined mode) and, for HA initiators, binds a replay session; anything
// else is a legacy v1 initiator and is served lock-step, unchanged.
func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	if !s.trackConn(conn) {
		return
	}
	defer s.untrackConn(conn)
	s.touchIdle(conn)
	op, payload, err := wire.ReadFrame(conn)
	if err != nil {
		s.countReadErr(err)
		return
	}
	if op == wire.OpHello {
		h, err := wire.DecodeHello(payload)
		if err != nil {
			s.tel.MalformedFrames.Inc()
			return
		}
		accepted := wire.ProtoSync
		if h.Version >= wire.ProtoTagged {
			accepted = wire.ProtoTagged
		}
		// Sessions ride the tagged protocol only: the session table lives on
		// the Pair, so a session survives reconnecting to the peer port.
		var sess *controller.Session
		if accepted == wire.ProtoTagged && h.HasSession {
			sess = s.pair.Sessions().Resume(h.Session)
			s.tel.SessionsBound.Inc()
		}
		var sid uint64
		if sess != nil {
			sid = sess.ID
		}
		s.touchWrite(conn)
		if wire.RespondOK(conn, wire.OpHello, wire.EncodeHello(accepted, sid, sess != nil)) != nil {
			s.tel.AbnormalDisconnects.Inc()
			return
		}
		if accepted == wire.ProtoTagged {
			s.tel.PipelinedConns.Inc()
			s.servePipelined(conn, sess)
			return
		}
		s.tel.LegacyConns.Inc()
		s.serveLegacy(conn, 0, nil, false)
		return
	}
	s.tel.LegacyConns.Inc()
	s.serveLegacy(conn, op, payload, true)
}

// serveLegacy is the v1 lock-step loop. When pending is true the first
// request was already read by handle during protocol sniffing.
func (s *Server) serveLegacy(conn net.Conn, op byte, payload []byte, pending bool) {
	for {
		if !pending {
			var err error
			s.touchIdle(conn)
			op, payload, err = wire.ReadFrame(conn)
			if err != nil {
				s.countReadErr(err)
				return
			}
		}
		pending = false
		resp, err := s.dispatch(nil, op, payload)
		s.touchWrite(conn)
		if err != nil {
			s.respCode(err) // count HA refusals even though v1 carries no codes
			if wire.RespondErr(conn, op, err) != nil {
				s.tel.AbnormalDisconnects.Inc()
				return
			}
			continue
		}
		if wire.RespondOK(conn, op, resp) != nil {
			s.tel.AbnormalDisconnects.Inc()
			return
		}
	}
}

// countReadErr attributes a connection-terminating read failure: clean EOFs
// at a frame boundary are normal; everything else lands in a counter that
// used to not exist (the old server dropped all of these silently).
func (s *Server) countReadErr(err error) {
	switch {
	case err == nil || errors.Is(err, io.EOF):
		// Clean shutdown between frames.
	case errors.Is(err, wire.ErrFrameTooLarge):
		s.tel.OversizedFrames.Inc()
	case errors.Is(err, wire.ErrBadFrame):
		s.tel.MalformedFrames.Inc()
	case errors.Is(err, os.ErrDeadlineExceeded):
		// The idle deadline reaped the connection (or woke its reader for a
		// drain, which isn't worth a counter).
		if !s.draining() {
			s.tel.IdleTimeouts.Inc()
		}
	case errors.Is(err, net.ErrClosed):
		// We closed it (server shutdown or a writer failure already
		// counted).
	default:
		// Partial frame, connection reset, timeout: the client vanished
		// mid-stream.
		s.tel.AbnormalDisconnects.Inc()
	}
}

// Typed dispatch failures, so tagged responses can carry structured codes.
var (
	// ErrReadTooLarge rejects a client-supplied read length beyond
	// wire.MaxReadLen. The length field is attacker controlled; before this
	// check a single 17-byte frame could demand a multi-GiB allocation.
	ErrReadTooLarge = errors.New("server: read length exceeds wire.MaxReadLen")
	// ErrUnknownOp rejects an unrecognized opcode.
	ErrUnknownOp = errors.New("server: unknown opcode")
	// ErrNoSession rejects an idempotent write on a connection whose hello
	// did not negotiate a session — without one there is no replay window to
	// give the op its at-most-once meaning.
	ErrNoSession = errors.New("server: idempotent write outside a session")
)

// errCode maps a dispatch failure to its wire error code.
func errCode(err error) uint32 {
	var d *wire.RemoteError
	switch {
	case errors.Is(err, ErrReadTooLarge):
		return wire.CodeTooLarge
	case errors.Is(err, ErrUnknownOp):
		return wire.CodeUnknownOp
	case errors.Is(err, ErrNoSession):
		return wire.CodeBadPayload
	case errors.Is(err, controller.ErrNotActive):
		return wire.CodeNotPrimary
	case errors.Is(err, controller.ErrUnavailable):
		return wire.CodeRetryable
	case errors.Is(err, io.ErrUnexpectedEOF):
		return wire.CodeBadPayload
	case errors.As(err, &d):
		return d.Code
	default:
		return wire.CodeInternal
	}
}

// respCode maps a dispatch failure to its wire code and counts the
// HA-relevant refusals on the way out.
func (s *Server) respCode(err error) uint32 {
	code := errCode(err)
	switch code {
	case wire.CodeNotPrimary:
		s.tel.NotPrimaryRedirects.Inc()
	case wire.CodeRetryable:
		s.tel.RetryableRejects.Inc()
	}
	return code
}

// definitiveOutcome classifies a write outcome for the idempotency window:
// fenced-controller and mid-failover refusals mean the op was NOT applied,
// so they must not be recorded — a later replay gets to apply for real.
// Everything else (success, or a real engine rejection) is final.
func definitiveOutcome(err error) bool {
	return !errors.Is(err, controller.ErrUnavailable) &&
		!errors.Is(err, controller.ErrNotActive)
}

// pace holds the caller until a data-path op's simulated completion time has
// elapsed in wall time (no-op unless Config.Pace). The cap bounds the damage
// of a simulated-device convoy: pacing demonstrates latency, it must not
// wedge a worker.
func (s *Server) pace(at, done sim.Time) {
	if !s.cfg.Pace || done <= at {
		return
	}
	d := time.Duration(done - at)
	if d > 100*time.Millisecond {
		d = 100 * time.Millisecond
	}
	time.Sleep(d)
}

// badPayload counts an undecodable request payload and propagates its
// decode error.
func (s *Server) badPayload(err error) error {
	s.tel.MalformedFrames.Inc()
	return err
}

// dispatch runs one request against the engine. Called concurrently from
// every connection goroutine and worker; the Pair and the engine
// synchronize internally. sess is the connection's replay session (nil on
// legacy and session-less connections).
func (s *Server) dispatch(sess *controller.Session, op byte, payload []byte) ([]byte, error) {
	at := s.now()
	// Resolve the engine through the fencing-aware view: a demoted
	// controller answers ErrNotActive (→ CodeNotPrimary) so clients
	// re-resolve to the survivor instead of reading stale state.
	a, err := s.pair.Engine(s.via)
	if err != nil {
		return nil, err
	}
	d := wire.Dec{B: payload}
	switch op {
	case wire.OpCreateVolume:
		name := d.Str()
		size := d.U64()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		id, _, err := a.CreateVolume(at, name, int64(size))
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpOpenVolume:
		name := d.Str()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		infos, _, err := a.Volumes(at)
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			if info.Name == name {
				var e wire.Enc
				return e.U64(uint64(info.ID)).U64(uint64(info.SizeBytes)).B, nil
			}
		}
		return nil, core.ErrNoSuchVolume

	case wire.OpListVolumes:
		infos, _, err := a.Volumes(at)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		e.U64(uint64(len(infos)))
		for _, info := range infos {
			snap := uint64(0)
			if info.Snapshot {
				snap = 1
			}
			e.U64(uint64(info.ID)).Str(info.Name).U64(uint64(info.SizeBytes)).U64(snap)
		}
		return e.B, nil

	case wire.OpRead:
		vol := d.U64()
		off := d.U64()
		n := d.U64()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		// Clamp the client-supplied length BEFORE it sizes an allocation:
		// n is attacker controlled and anything over MaxReadLen could not
		// be framed in a response anyway.
		if n > wire.MaxReadLen {
			s.tel.RejectedReads.Inc()
			return nil, fmt.Errorf("%w: %d > %d", ErrReadTooLarge, n, wire.MaxReadLen)
		}
		data, done, err := s.pair.ReadAt(at, s.via, core.VolumeID(vol), int64(off), int(n))
		if err != nil {
			return nil, err
		}
		s.pace(at, done)
		var e wire.Enc
		return e.Bytes(data).B, nil

	case wire.OpWrite:
		vol := d.U64()
		off := d.U64()
		// Dec.Bytes aliases the frame buffer; the engine retains write data
		// beyond this dispatch (NVRAM mirrors, dedup candidates), and v2
		// frames are handled by concurrent workers — copy at the boundary.
		data := append([]byte(nil), d.Bytes()...)
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		done, err := s.pair.WriteAt(at, s.via, core.VolumeID(vol), int64(off), data)
		if err != nil {
			return nil, err
		}
		s.pace(at, done)
		return nil, nil

	case wire.OpWriteIdem:
		seq := d.U64()
		vol := d.U64()
		off := d.U64()
		data := append([]byte(nil), d.Bytes()...)
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		if sess == nil {
			return nil, ErrNoSession
		}
		// At-most-once: the session window decides whether this (seq) is a
		// fresh op or a replay of one already applied. A replay returns the
		// recorded outcome without touching the engine.
		err, _ := sess.Do(seq, func() error {
			done, werr := s.pair.WriteAt(at, s.via, core.VolumeID(vol), int64(off), data)
			if werr == nil {
				s.pace(at, done)
			}
			return werr
		}, definitiveOutcome)
		return nil, err

	case wire.OpSnapshot:
		vol := d.U64()
		name := d.Str()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		id, _, err := a.Snapshot(at, core.VolumeID(vol), name)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpClone:
		snap := d.U64()
		name := d.Str()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		id, _, err := a.Clone(at, core.VolumeID(snap), name)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpDelete:
		vol := d.U64()
		if !d.OK() {
			return nil, s.badPayload(d.Err)
		}
		_, err := a.Delete(at, core.VolumeID(vol))
		return nil, err

	case wire.OpStats:
		st := a.Stats()
		gov := a.Governor()
		text := fmt.Sprintf(
			"writes=%d reads=%d\nwrite latency: %s\nread latency: %s\n"+
				"reduction=%.2fx (logical=%d physical=%d dedup=%d)\n"+
				"dedup hits=%d misses=%d\nsegments=%d frontierAUs=%d freeAUs=%d\n"+
				"gc runs=%d checkpoints=%d frontier writes=%d\n"+
				"flash: host W=%d flash W=%d erases=%d\n"+
				"slo: budget=%v p99.9=%v threatened=%v deferrals=%d scrub deferrals=%d\n"+
				"frontend: %s\n",
			st.Writes, st.Reads,
			st.WriteLatency.Summary(), st.ReadLatency.Summary(),
			st.ReductionRatio, st.Reduction.LogicalBytes, st.Reduction.PhysicalBytes, st.Reduction.DedupBytes,
			st.DedupHits, st.DedupMisses, st.Segments, st.FrontierAUs, st.FreeAUs,
			st.GCRuns, st.Checkpoints, st.FrontierWrites,
			st.FlashStats.HostBytesWritten, st.FlashStats.FlashBytesWritten, st.FlashStats.Erases,
			gov.Budget(), gov.P999(), gov.Threatened(), gov.Deferrals(), st.ScrubDeferrals,
			s.tel.Summary(),
		)
		var e wire.Enc
		return e.Str(text).B, nil

	case wire.OpFlush:
		_, err := a.FlushAll(at)
		return nil, err

	case wire.OpGC:
		rep, _, err := a.RunGC(at)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.Str(fmt.Sprintf("%+v", rep)).B, nil

	default:
		return nil, fmt.Errorf("%w: %d", ErrUnknownOp, op)
	}
}
