// Package server exposes an array's volumes over TCP using the wire
// protocol — the repository's stand-in for the paper's iSCSI/FibreChannel
// front end (§3, §4.1). Run two servers over one controller.Pair (one per
// Role) to get the active-active behaviour: clients may connect to either
// port; the secondary forwards to the primary at an interconnect-latency
// cost.
//
// Each accepted connection is served by its own goroutine and dispatches
// straight into the engine with no server-side serialization: the engine's
// write path runs compression and dedup hashing before taking its lock
// (core.Array.WriteAtConcurrent), so N connections use N cores for the
// CPU-heavy stages; with Config.CommitLanes > 1 the commit section itself
// shards into per-volume lanes (DESIGN.md, "Sharded commit"), leaving the
// NVRAM group commit and brief engine-mutex sections as the serial core.
package server

import (
	"fmt"
	"net"
	"time"

	"purity/internal/controller"
	"purity/internal/core"
	"purity/internal/sim"
	"purity/internal/wire"
)

// Server serves one controller's port.
type Server struct {
	pair *controller.Pair
	via  controller.Role

	epoch time.Time // wall-clock origin for the simulated timeline
}

// New returns a server for the given controller of a pair.
func New(pair *controller.Pair, via controller.Role) *Server {
	return &Server{pair: pair, via: via, epoch: time.Now()}
}

// now maps wall time onto the simulated timeline, so a served array's
// device model experiences realistic inter-arrival times.
func (s *Server) now() sim.Time { return sim.Time(time.Since(s.epoch).Nanoseconds()) }

// Serve accepts connections until the listener closes.
func (s *Server) Serve(l net.Listener) error {
	for {
		conn, err := l.Accept()
		if err != nil {
			return err
		}
		go s.handle(conn)
	}
}

func (s *Server) handle(conn net.Conn) {
	defer conn.Close()
	for {
		op, payload, err := wire.ReadFrame(conn)
		if err != nil {
			return
		}
		resp, err := s.dispatch(op, payload)
		if err != nil {
			if wire.RespondErr(conn, op, err) != nil {
				return
			}
			continue
		}
		if wire.RespondOK(conn, op, resp) != nil {
			return
		}
	}
}

// dispatch runs one request against the engine. Called concurrently from
// every connection goroutine; the Pair and the engine synchronize
// internally.
func (s *Server) dispatch(op byte, payload []byte) ([]byte, error) {
	at := s.now()
	a := s.pair.Array()
	if a == nil {
		return nil, controller.ErrUnavailable
	}
	d := wire.Dec{B: payload}
	switch op {
	case wire.OpCreateVolume:
		name := d.Str()
		size := d.U64()
		if !d.OK() {
			return nil, d.Err
		}
		id, _, err := a.CreateVolume(at, name, int64(size))
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpOpenVolume:
		name := d.Str()
		if !d.OK() {
			return nil, d.Err
		}
		infos, _, err := a.Volumes(at)
		if err != nil {
			return nil, err
		}
		for _, info := range infos {
			if info.Name == name {
				var e wire.Enc
				return e.U64(uint64(info.ID)).U64(uint64(info.SizeBytes)).B, nil
			}
		}
		return nil, core.ErrNoSuchVolume

	case wire.OpListVolumes:
		infos, _, err := a.Volumes(at)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		e.U64(uint64(len(infos)))
		for _, info := range infos {
			snap := uint64(0)
			if info.Snapshot {
				snap = 1
			}
			e.U64(uint64(info.ID)).Str(info.Name).U64(uint64(info.SizeBytes)).U64(snap)
		}
		return e.B, nil

	case wire.OpRead:
		vol := d.U64()
		off := d.U64()
		n := d.U64()
		if !d.OK() {
			return nil, d.Err
		}
		data, _, err := s.pair.ReadAt(at, s.via, core.VolumeID(vol), int64(off), int(n))
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.Bytes(data).B, nil

	case wire.OpWrite:
		vol := d.U64()
		off := d.U64()
		data := d.Bytes()
		if !d.OK() {
			return nil, d.Err
		}
		if _, err := s.pair.WriteAt(at, s.via, core.VolumeID(vol), int64(off), data); err != nil {
			return nil, err
		}
		return nil, nil

	case wire.OpSnapshot:
		vol := d.U64()
		name := d.Str()
		if !d.OK() {
			return nil, d.Err
		}
		id, _, err := a.Snapshot(at, core.VolumeID(vol), name)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpClone:
		snap := d.U64()
		name := d.Str()
		if !d.OK() {
			return nil, d.Err
		}
		id, _, err := a.Clone(at, core.VolumeID(snap), name)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.U64(uint64(id)).B, nil

	case wire.OpDelete:
		vol := d.U64()
		if !d.OK() {
			return nil, d.Err
		}
		_, err := a.Delete(at, core.VolumeID(vol))
		return nil, err

	case wire.OpStats:
		st := a.Stats()
		text := fmt.Sprintf(
			"writes=%d reads=%d\nwrite latency: %s\nread latency: %s\n"+
				"reduction=%.2fx (logical=%d physical=%d dedup=%d)\n"+
				"dedup hits=%d misses=%d\nsegments=%d frontierAUs=%d freeAUs=%d\n"+
				"gc runs=%d checkpoints=%d frontier writes=%d\n"+
				"flash: host W=%d flash W=%d erases=%d\n",
			st.Writes, st.Reads,
			st.WriteLatency.Summary(), st.ReadLatency.Summary(),
			st.ReductionRatio, st.Reduction.LogicalBytes, st.Reduction.PhysicalBytes, st.Reduction.DedupBytes,
			st.DedupHits, st.DedupMisses, st.Segments, st.FrontierAUs, st.FreeAUs,
			st.GCRuns, st.Checkpoints, st.FrontierWrites,
			st.FlashStats.HostBytesWritten, st.FlashStats.FlashBytesWritten, st.FlashStats.Erases,
		)
		var e wire.Enc
		return e.Str(text).B, nil

	case wire.OpFlush:
		_, err := a.FlushAll(at)
		return nil, err

	case wire.OpGC:
		rep, _, err := a.RunGC(at)
		if err != nil {
			return nil, err
		}
		var e wire.Enc
		return e.Str(fmt.Sprintf("%+v", rep)).B, nil

	default:
		return nil, fmt.Errorf("server: unknown opcode %d", op)
	}
}
