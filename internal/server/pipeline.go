package server

import (
	"errors"
	"net"
	"os"
	"sync"

	"purity/internal/controller"
	"purity/internal/wire"
)

// request is one admitted tagged request.
type request struct {
	op      byte
	tag     uint32
	payload []byte
	// release returns the request's admission resources (tenant window
	// slot, byte budget, tag). Called exactly once, after the response is
	// written or discarded.
	release func()
}

// outFrame is one completed response bound for the writer goroutine.
type outFrame struct {
	op      byte
	tag     uint32
	resp    []byte // tagged-mode response payload (status byte first)
	release func()
}

// pconn is one pipelined (v2) connection: the reader goroutine (the
// connection's accept goroutine) admits requests, Config.Workers goroutines
// dispatch them out of order, and a single writer goroutine serializes
// completions onto the socket — the only place response frames are written,
// so frames can never interleave.
type pconn struct {
	s    *Server
	conn net.Conn
	sess *controller.Session // replay session from the hello (nil if none)

	hi  chan *request // foreground reads
	lo  chan *request // everything else
	out chan outFrame

	// down closes when the connection is torn down (writer failure), waking
	// any admission wait so a dead client can't pin a tenant slot or
	// in-flight bytes forever.
	down     chan struct{}
	downOnce sync.Once

	// tags tracks in-flight request tags for duplicate detection. Guarded
	// by tagMu (claimed by the reader, dropped at completion by the
	// writer's release callbacks).
	tagMu sync.Mutex
	tags  map[uint32]struct{}

	// tenants maps volume → in-flight window semaphore. The map itself is
	// touched only by the reader goroutine; the channels it holds are
	// shared with release callbacks.
	tenants map[uint64]chan struct{}
}

// servePipelined runs one v2 connection to completion.
func (s *Server) servePipelined(conn net.Conn, sess *controller.Session) {
	c := &pconn{
		s:       s,
		conn:    conn,
		sess:    sess,
		hi:      make(chan *request, s.cfg.QueueDepth),
		lo:      make(chan *request, s.cfg.QueueDepth),
		out:     make(chan outFrame, s.cfg.QueueDepth),
		down:    make(chan struct{}),
		tags:    make(map[uint32]struct{}),
		tenants: make(map[uint64]chan struct{}),
	}
	var workers sync.WaitGroup
	for i := 0; i < s.cfg.Workers; i++ {
		workers.Add(1)
		go c.worker(&workers)
	}
	writerDone := make(chan struct{})
	go c.writer(writerDone)

	c.readLoop()
	// Orderly drain: no new requests; workers finish what was admitted,
	// then the writer flushes every completion (running each release).
	close(c.hi)
	close(c.lo)
	workers.Wait()
	close(c.out)
	<-writerDone
}

// readLoop admits requests until the connection dies or the client commits
// a protocol violation. Admission can block — that is the design: a tenant
// over its window, or a connection over the global byte budget, stalls
// here, which backpressures the TCP stream instead of queueing unboundedly.
func (c *pconn) readLoop() {
	for {
		c.s.touchIdle(c.conn)
		op, tag, payload, err := wire.ReadTaggedFrame(c.conn)
		if err != nil {
			c.s.countReadErr(err)
			return
		}
		if !c.claimTag(tag) {
			// A tag reused while still in flight would make two responses
			// carry the same tag — the initiator could never match them.
			// Report once, then kill the connection (the stream is
			// unsynchronized from the server's point of view).
			c.s.tel.DuplicateTags.Inc()
			c.out <- outFrame{op: op, tag: tag,
				resp: wire.ErrResponse(wire.CodeDuplicateTag, "tag already in flight")}
			return
		}
		waited := false
		ten := c.tenantWindow(tenantOf(op, payload))
		select {
		case ten <- struct{}{}:
		default:
			waited = true
			c.s.tel.AdmissionWaits.Inc()
			// The wait is abortable: a connection torn down by its writer,
			// or a server drain, must not leave this goroutine parked on a
			// slot that will never free (the admission-slot leak).
			select {
			case ten <- struct{}{}:
			case <-c.down:
				c.abortAdmission(tag)
				return
			case <-c.s.drainCh:
				c.abortAdmission(tag)
				return
			}
		}
		cost := admissionCost(op, payload)
		granted, budgetWaited := c.s.budget.acquire(cost, c.down, c.s.drainCh)
		if budgetWaited && !waited {
			c.s.tel.AdmissionWaits.Inc()
		}
		if !granted {
			<-ten
			c.abortAdmission(tag)
			return
		}
		r := &request{op: op, tag: tag, payload: payload, release: func() {
			<-ten
			c.s.budget.release(cost)
			c.dropTag(tag)
		}}
		if op == wire.OpRead {
			c.hi <- r
		} else {
			c.lo <- r
		}
	}
}

// abortAdmission unwinds a partially-admitted request when the wait is cut
// short; the un-responded request is dropped (the client's reconnect path
// replays it).
func (c *pconn) abortAdmission(tag uint32) {
	c.s.tel.AdmissionAborts.Inc()
	c.dropTag(tag)
}

// worker dispatches admitted requests. While the engine's SLO governor
// reports the foreground read tail over budget, the hi (read) queue drains
// strictly first — the front-end half of §4.4's "foreground outranks
// background" rule; otherwise the two queues are served fairly.
func (c *pconn) worker(wg *sync.WaitGroup) {
	defer wg.Done()
	hi, lo := c.hi, c.lo
	for hi != nil || lo != nil {
		var r *request
		var ok bool
		if hi != nil && c.s.governor().Threatened() {
			select {
			case r, ok = <-hi:
				if !ok {
					hi = nil
					continue
				}
			default:
				select {
				case r, ok = <-hi:
					if !ok {
						hi = nil
						continue
					}
				case r, ok = <-lo:
					if !ok {
						lo = nil
						continue
					}
				}
			}
		} else {
			select {
			case r, ok = <-hi:
				if !ok {
					hi = nil
					continue
				}
			case r, ok = <-lo:
				if !ok {
					lo = nil
					continue
				}
			}
		}
		c.run(r)
	}
}

// run executes one request and hands its completion to the writer.
func (c *pconn) run(r *request) {
	if hook := c.s.stall; hook != nil {
		hook(r.op, r.payload)
	}
	resp, err := c.s.dispatch(c.sess, r.op, r.payload)
	var frame []byte
	if err != nil {
		frame = wire.ErrResponse(c.s.respCode(err), err.Error())
	} else {
		frame = wire.OKResponse(resp)
	}
	c.out <- outFrame{op: r.op, tag: r.tag, resp: frame, release: r.release}
}

// writer is the single goroutine that writes response frames. Each write is
// bounded by Config.WriteTimeout, so a client that stops reading cannot
// wedge the writer via TCP backpressure. After a write failure it tears the
// connection down but keeps draining, so every release callback still runs
// and no worker blocks on a dead connection.
func (c *pconn) writer(done chan struct{}) {
	defer close(done)
	failed := false
	for f := range c.out {
		if !failed {
			c.s.touchWrite(c.conn)
			if err := wire.WriteTaggedFrame(c.conn, f.op, f.tag, f.resp); err != nil {
				failed = true
				if errors.Is(err, os.ErrDeadlineExceeded) {
					c.s.tel.WriteTimeouts.Inc()
				}
				c.teardown()
				c.s.tel.AbnormalDisconnects.Inc()
			}
		}
		if f.release != nil {
			f.release()
		}
	}
}

// teardown marks the connection dead and wakes everything parked on it: the
// reader's blocking Read (via the close), the reader's admission wait (via
// down), and any wait on the global byte budget (via the broadcast). The
// reader's subsequent net.ErrClosed is not re-counted.
func (c *pconn) teardown() {
	c.downOnce.Do(func() {
		close(c.down)
		//lint:ignore errdrop the failure that triggered teardown is already counted; the close is best-effort
		c.conn.Close()
		c.s.budget.wake()
	})
}

// claimTag records a tag as in flight; false means it already is.
func (c *pconn) claimTag(tag uint32) bool {
	c.tagMu.Lock()
	defer c.tagMu.Unlock()
	if _, dup := c.tags[tag]; dup {
		return false
	}
	c.tags[tag] = struct{}{}
	return true
}

// dropTag retires a completed tag.
func (c *pconn) dropTag(tag uint32) {
	c.tagMu.Lock()
	delete(c.tags, tag)
	c.tagMu.Unlock()
}

// tenantWindow returns (lazily creating) the tenant's in-flight window.
// Reader-goroutine only.
func (c *pconn) tenantWindow(tenant uint64) chan struct{} {
	w, ok := c.tenants[tenant]
	if !ok {
		w = make(chan struct{}, c.s.cfg.TenantWindow)
		c.tenants[tenant] = w
	}
	return w
}

// tenantOf extracts the admission tenant: the target volume for data-path
// and volume-lifecycle ops, the shared control tenant (0) for everything
// else. A short payload yields tenant 0 and is rejected by dispatch.
func tenantOf(op byte, payload []byte) uint64 {
	switch op {
	case wire.OpRead, wire.OpWrite, wire.OpSnapshot, wire.OpClone, wire.OpDelete:
		d := wire.Dec{B: payload}
		return d.U64()
	case wire.OpWriteIdem:
		// The idempotency sequence number precedes the volume.
		d := wire.Dec{B: payload}
		d.U64() // seq
		return d.U64()
	}
	return 0
}

// admissionCost estimates a request's in-flight byte footprint: its payload
// plus, for reads, the response it will pin.
func admissionCost(op byte, payload []byte) int64 {
	cost := int64(len(payload)) + 512 // response floor
	if op == wire.OpRead {
		d := wire.Dec{B: payload}
		d.U64() // vol
		d.U64() // off
		n := d.U64()
		if d.OK() && n <= wire.MaxReadLen {
			cost += int64(n)
		}
	}
	return cost
}

// byteBudget is the global in-flight payload budget. Admission blocks while
// granting n would exceed the cap; a single request larger than the whole
// cap is clamped so it can still run (alone).
type byteBudget struct {
	mu   sync.Mutex
	cond *sync.Cond
	cap  int64
	used int64
}

func newByteBudget(capBytes int64) *byteBudget {
	b := &byteBudget{cap: capBytes}
	b.cond = sync.NewCond(&b.mu)
	return b
}

func (b *byteBudget) clamp(n int64) int64 {
	if n > b.cap {
		return b.cap
	}
	return n
}

// acquire blocks until n bytes fit, or until any abort channel closes (a
// dead connection or a server drain — the waiter is woken by wake and gives
// up instead of pinning budget it will never use). It reports whether the
// bytes were granted and whether it had to wait.
func (b *byteBudget) acquire(n int64, abort ...<-chan struct{}) (granted, waited bool) {
	n = b.clamp(n)
	aborted := func() bool {
		for _, ch := range abort {
			select {
			case <-ch:
				return true
			default:
			}
		}
		return false
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	for b.used+n > b.cap {
		if aborted() {
			return false, waited
		}
		waited = true
		b.cond.Wait()
	}
	b.used += n
	return true, waited
}

// wake re-checks every parked acquire. Called when an abort channel closes,
// since cond waiters can't select on it.
func (b *byteBudget) wake() { b.cond.Broadcast() }

// release returns n bytes to the budget.
func (b *byteBudget) release(n int64) {
	n = b.clamp(n)
	b.mu.Lock()
	b.used -= n
	b.mu.Unlock()
	b.cond.Broadcast()
}
