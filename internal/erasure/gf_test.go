package erasure

import (
	"testing"
	"testing/quick"
)

func TestGFMulIdentityAndZero(t *testing.T) {
	for a := 0; a < 256; a++ {
		if gfMul(byte(a), 1) != byte(a) {
			t.Fatalf("a*1 != a for a=%d", a)
		}
		if gfMul(byte(a), 0) != 0 || gfMul(0, byte(a)) != 0 {
			t.Fatalf("a*0 != 0 for a=%d", a)
		}
	}
}

func TestGFMulCommutative(t *testing.T) {
	f := func(a, b byte) bool { return gfMul(a, b) == gfMul(b, a) }
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFMulAssociative(t *testing.T) {
	f := func(a, b, c byte) bool {
		return gfMul(gfMul(a, b), c) == gfMul(a, gfMul(b, c))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDistributive(t *testing.T) {
	f := func(a, b, c byte) bool {
		return gfMul(a, b^c) == gfMul(a, b)^gfMul(a, c)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestGFDivInvertsMul(t *testing.T) {
	for a := 0; a < 256; a++ {
		for b := 1; b < 256; b++ {
			p := gfMul(byte(a), byte(b))
			if gfDiv(p, byte(b)) != byte(a) {
				t.Fatalf("(%d*%d)/%d != %d", a, b, b, a)
			}
		}
	}
}

func TestGFInv(t *testing.T) {
	for a := 1; a < 256; a++ {
		if gfMul(byte(a), gfInv(byte(a))) != 1 {
			t.Fatalf("a * a^-1 != 1 for a=%d", a)
		}
	}
}

func TestGFInvZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfInv(0) did not panic")
		}
	}()
	gfInv(0)
}

func TestGFDivByZeroPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("gfDiv(x, 0) did not panic")
		}
	}()
	gfDiv(5, 0)
}

func TestGFExp(t *testing.T) {
	if gfExp(0, 0) != 1 {
		t.Error("0^0 != 1")
	}
	if gfExp(0, 5) != 0 {
		t.Error("0^5 != 0")
	}
	for a := 1; a < 256; a++ {
		// a^3 == a*a*a
		want := gfMul(gfMul(byte(a), byte(a)), byte(a))
		if gfExp(byte(a), 3) != want {
			t.Fatalf("a^3 mismatch for a=%d", a)
		}
		// a^255 == 1 (multiplicative group order)
		if gfExp(byte(a), 255) != 1 {
			t.Fatalf("a^255 != 1 for a=%d", a)
		}
	}
}

func TestMulAddMatchesScalar(t *testing.T) {
	src := make([]byte, 300)
	for i := range src {
		src[i] = byte(i * 7)
	}
	for _, c := range []byte{0, 1, 2, 0x53, 0xff} {
		dst := make([]byte, len(src))
		for i := range dst {
			dst[i] = byte(i * 13)
		}
		want := make([]byte, len(src))
		for i := range want {
			want[i] = dst[i] ^ gfMul(c, src[i])
		}
		mulAdd(dst, src, c)
		for i := range dst {
			if dst[i] != want[i] {
				t.Fatalf("mulAdd c=%#x mismatch at %d", c, i)
			}
		}
	}
}

func TestMulSetMatchesScalar(t *testing.T) {
	src := make([]byte, 300)
	for i := range src {
		src[i] = byte(i * 11)
	}
	for _, c := range []byte{0, 1, 2, 0x53, 0xff} {
		dst := make([]byte, len(src))
		mulSet(dst, src, c)
		for i := range dst {
			if dst[i] != gfMul(c, src[i]) {
				t.Fatalf("mulSet c=%#x mismatch at %d", c, i)
			}
		}
	}
}

func TestMulAddUnalignedLengths(t *testing.T) {
	// The chunked fast paths must agree with scalar math on every length
	// around the 4- and 8-byte unroll boundaries.
	for _, n := range []int{0, 1, 3, 4, 5, 7, 8, 9, 15, 16, 17, 31, 33, 63, 65} {
		src := make([]byte, n)
		for i := range src {
			src[i] = byte(i*37 + 1)
		}
		for _, c := range []byte{1, 2, 0x8e, 0xff} {
			dst := make([]byte, n)
			want := make([]byte, n)
			for i := range dst {
				dst[i] = byte(i * 29)
				want[i] = dst[i] ^ gfMul(c, src[i])
			}
			mulAdd(dst, src, c)
			for i := range dst {
				if dst[i] != want[i] {
					t.Fatalf("n=%d c=%#x: mismatch at %d", n, c, i)
				}
			}
		}
	}
}

func TestEncodeRangeMatchesEncode(t *testing.T) {
	c, err := New(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	const size = 1000
	mk := func() [][]byte {
		shards := make([][]byte, 9)
		for i := range shards {
			shards[i] = make([]byte, size)
			for j := range shards[i] {
				shards[i][j] = byte(i*31 + j*7)
			}
		}
		return shards
	}
	whole := mk()
	if err := c.Encode(whole); err != nil {
		t.Fatal(err)
	}
	chunked := mk()
	for lo := 0; lo < size; lo += 137 {
		hi := lo + 137
		if hi > size {
			hi = size
		}
		if err := c.EncodeRange(chunked, lo, hi); err != nil {
			t.Fatal(err)
		}
	}
	for p := 7; p < 9; p++ {
		for i := range whole[p] {
			if whole[p][i] != chunked[p][i] {
				t.Fatalf("parity %d byte %d: chunked encode diverges", p, i)
			}
		}
	}
}

// BenchmarkMulAdd guards the GF kernel fast paths: the c==1 XOR path and
// the table-lookup path are the inner loops of every parity encode and
// reconstruction.
func BenchmarkMulAdd(b *testing.B) {
	src := make([]byte, 32<<10)
	dst := make([]byte, 32<<10)
	for i := range src {
		src[i] = byte(i)
	}
	for _, bc := range []struct {
		name string
		c    byte
	}{{"xor-c1", 1}, {"table-c83", 0x53}} {
		b.Run(bc.name, func(b *testing.B) {
			b.SetBytes(int64(len(src)))
			for i := 0; i < b.N; i++ {
				mulAdd(dst, src, bc.c)
			}
		})
	}
}

func BenchmarkMulSet(b *testing.B) {
	src := make([]byte, 32<<10)
	dst := make([]byte, 32<<10)
	for i := range src {
		src[i] = byte(i)
	}
	b.SetBytes(int64(len(src)))
	for i := 0; i < b.N; i++ {
		mulSet(dst, src, 0x53)
	}
}

func TestMatrixInvert(t *testing.T) {
	// Invert random-ish Vandermonde submatrices and check M * M^-1 = I.
	for _, n := range []int{1, 2, 3, 5, 7, 9} {
		v := vandermonde(n+3, n)
		m := v.subRows([]int{0, 2, 3, 1, 5, 4, 6, 8, 7}[:n])
		inv, err := m.invert()
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		prod := m.mul(inv)
		id := identity(n)
		for i := range prod.data {
			if prod.data[i] != id.data[i] {
				t.Fatalf("n=%d: M*M^-1 != I", n)
			}
		}
	}
}

func TestMatrixInvertSingular(t *testing.T) {
	m := newMatrix(2, 2)
	m.set(0, 0, 1)
	m.set(0, 1, 2)
	m.set(1, 0, 1)
	m.set(1, 1, 2)
	if _, err := m.invert(); err == nil {
		t.Fatal("inverting singular matrix did not fail")
	}
}
