package erasure

import "fmt"

// matrix is a dense row-major byte matrix over GF(2^8).
type matrix struct {
	rows, cols int
	data       []byte
}

func newMatrix(rows, cols int) matrix {
	return matrix{rows: rows, cols: cols, data: make([]byte, rows*cols)}
}

func (m matrix) at(r, c int) byte     { return m.data[r*m.cols+c] }
func (m matrix) set(r, c int, v byte) { m.data[r*m.cols+c] = v }
func (m matrix) row(r int) []byte     { return m.data[r*m.cols : (r+1)*m.cols] }

// mul returns m × other.
func (m matrix) mul(other matrix) matrix {
	if m.cols != other.rows {
		panic("erasure: matrix dimension mismatch")
	}
	out := newMatrix(m.rows, other.cols)
	for r := 0; r < m.rows; r++ {
		for c := 0; c < other.cols; c++ {
			var acc byte
			for k := 0; k < m.cols; k++ {
				acc ^= gfMul(m.at(r, k), other.at(k, c))
			}
			out.set(r, c, acc)
		}
	}
	return out
}

// identity returns the n×n identity matrix.
func identity(n int) matrix {
	m := newMatrix(n, n)
	for i := 0; i < n; i++ {
		m.set(i, i, 1)
	}
	return m
}

// vandermonde builds the rows×cols Vandermonde matrix with element (r, c) =
// r^c. Any K of its rows are linearly independent, which is what makes
// arbitrary K-of-N reconstruction possible.
func vandermonde(rows, cols int) matrix {
	m := newMatrix(rows, cols)
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			m.set(r, c, gfExp(byte(r), c))
		}
	}
	return m
}

// invert returns the inverse of a square matrix via Gauss–Jordan
// elimination, or an error if the matrix is singular.
func (m matrix) invert() (matrix, error) {
	if m.rows != m.cols {
		panic("erasure: inverting non-square matrix")
	}
	n := m.rows
	// Work on [m | I].
	work := newMatrix(n, 2*n)
	for r := 0; r < n; r++ {
		copy(work.row(r)[:n], m.row(r))
		work.set(r, n+r, 1)
	}
	for col := 0; col < n; col++ {
		// Find a pivot.
		pivot := -1
		for r := col; r < n; r++ {
			if work.at(r, col) != 0 {
				pivot = r
				break
			}
		}
		if pivot < 0 {
			return matrix{}, fmt.Errorf("erasure: singular matrix")
		}
		if pivot != col {
			pr, cr := work.row(pivot), work.row(col)
			for i := range pr {
				pr[i], cr[i] = cr[i], pr[i]
			}
		}
		// Scale pivot row to make the pivot 1.
		if v := work.at(col, col); v != 1 {
			inv := gfInv(v)
			r := work.row(col)
			for i := range r {
				r[i] = gfMul(r[i], inv)
			}
		}
		// Eliminate the column everywhere else.
		for r := 0; r < n; r++ {
			if r == col {
				continue
			}
			f := work.at(r, col)
			if f == 0 {
				continue
			}
			src, dst := work.row(col), work.row(r)
			for i := range dst {
				dst[i] ^= gfMul(f, src[i])
			}
		}
	}
	out := newMatrix(n, n)
	for r := 0; r < n; r++ {
		copy(out.row(r), work.row(r)[n:])
	}
	return out, nil
}

// subMatrix returns the matrix made of the given rows of m.
func (m matrix) subRows(rows []int) matrix {
	out := newMatrix(len(rows), m.cols)
	for i, r := range rows {
		copy(out.row(i), m.row(r))
	}
	return out
}
