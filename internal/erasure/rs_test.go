package erasure

import (
	"bytes"
	"testing"
	"testing/quick"

	"purity/internal/sim"
)

func fillShards(t *testing.T, c *Coder, size int, seed uint64) [][]byte {
	t.Helper()
	r := sim.NewRand(seed)
	shards := make([][]byte, c.TotalShards())
	for i := range shards {
		shards[i] = make([]byte, size)
		if i < c.DataShards() {
			r.Bytes(shards[i])
		}
	}
	if err := c.Encode(shards); err != nil {
		t.Fatal(err)
	}
	return shards
}

func cloneShards(shards [][]byte) [][]byte {
	out := make([][]byte, len(shards))
	for i, s := range shards {
		if s != nil {
			out[i] = bytes.Clone(s)
		}
	}
	return out
}

func TestNewInvalidGeometry(t *testing.T) {
	for _, g := range []struct{ k, m int }{{0, 2}, {7, 0}, {-1, 2}, {200, 100}} {
		if _, err := New(g.k, g.m); err == nil {
			t.Errorf("New(%d, %d) succeeded, want error", g.k, g.m)
		}
	}
}

func TestEncodeVerify(t *testing.T) {
	c, err := New(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	shards := fillShards(t, c, 1024, 1)
	ok, err := c.Verify(shards)
	if err != nil || !ok {
		t.Fatalf("Verify = %v, %v; want true, nil", ok, err)
	}
	// Corrupt one byte: verification must fail.
	shards[3][100] ^= 0xff
	ok, err = c.Verify(shards)
	if err != nil || ok {
		t.Fatalf("Verify after corruption = %v, %v; want false, nil", ok, err)
	}
}

func TestReconstructAllPairs(t *testing.T) {
	// The paper's claim: any two drive losses are survivable with 7+2.
	c, err := New(7, 2)
	if err != nil {
		t.Fatal(err)
	}
	orig := fillShards(t, c, 512, 2)
	n := c.TotalShards()
	for i := 0; i < n; i++ {
		for j := i; j < n; j++ {
			shards := cloneShards(orig)
			shards[i] = nil
			shards[j] = nil
			if err := c.Reconstruct(shards); err != nil {
				t.Fatalf("lose (%d,%d): %v", i, j, err)
			}
			for s := range shards {
				if !bytes.Equal(shards[s], orig[s]) {
					t.Fatalf("lose (%d,%d): shard %d mismatch", i, j, s)
				}
			}
		}
	}
}

func TestReconstructTooManyMissing(t *testing.T) {
	c, _ := New(7, 2)
	shards := fillShards(t, c, 256, 3)
	shards[0], shards[1], shards[2] = nil, nil, nil
	if err := c.Reconstruct(shards); err != ErrTooFewShards {
		t.Fatalf("err = %v, want ErrTooFewShards", err)
	}
}

func TestReconstructDataOnly(t *testing.T) {
	c, _ := New(7, 2)
	orig := fillShards(t, c, 256, 4)
	shards := cloneShards(orig)
	shards[2] = nil
	shards[8] = nil // parity: must stay nil
	if err := c.ReconstructData(shards); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(shards[2], orig[2]) {
		t.Fatal("data shard 2 not reconstructed")
	}
	if shards[8] != nil {
		t.Fatal("ReconstructData rebuilt parity")
	}
}

func TestReconstructNoop(t *testing.T) {
	c, _ := New(3, 2)
	orig := fillShards(t, c, 64, 5)
	shards := cloneShards(orig)
	if err := c.Reconstruct(shards); err != nil {
		t.Fatal(err)
	}
	for i := range shards {
		if !bytes.Equal(shards[i], orig[i]) {
			t.Fatalf("no-op reconstruct changed shard %d", i)
		}
	}
}

func TestShardSizeMismatch(t *testing.T) {
	c, _ := New(3, 2)
	shards := fillShards(t, c, 64, 6)
	shards[1] = shards[1][:32]
	if err := c.Encode(shards); err != ErrShardSize {
		t.Fatalf("err = %v, want ErrShardSize", err)
	}
}

func TestSplitJoinRoundTrip(t *testing.T) {
	c, _ := New(7, 2)
	for _, n := range []int{1, 7, 100, 1024, 7777} {
		data := make([]byte, n)
		sim.NewRand(uint64(n)).Bytes(data)
		shards := c.Split(data)
		if err := c.Encode(shards); err != nil {
			t.Fatal(err)
		}
		got := c.Join(shards, n)
		if !bytes.Equal(got, data) {
			t.Fatalf("split/join n=%d mismatch", n)
		}
	}
}

func TestReconstructProperty(t *testing.T) {
	// Property: for any geometry and any ≤m losses, reconstruction restores
	// the original shards exactly.
	geometries := []struct{ k, m int }{{3, 2}, {7, 2}, {5, 3}, {10, 2}, {2, 2}}
	f := func(seed uint64, pick uint16) bool {
		g := geometries[int(pick)%len(geometries)]
		c, err := New(g.k, g.m)
		if err != nil {
			return false
		}
		r := sim.NewRand(seed)
		shards := make([][]byte, c.TotalShards())
		for i := range shards {
			shards[i] = make([]byte, 128)
			if i < g.k {
				r.Bytes(shards[i])
			}
		}
		if c.Encode(shards) != nil {
			return false
		}
		orig := cloneShards(shards)
		// Drop up to m random shards.
		drops := 1 + int(seed%uint64(g.m))
		perm := r.Perm(c.TotalShards())
		for _, idx := range perm[:drops] {
			shards[idx] = nil
		}
		if c.Reconstruct(shards) != nil {
			return false
		}
		for i := range shards {
			if !bytes.Equal(shards[i], orig[i]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestLinearity(t *testing.T) {
	// RS over GF(2^8) is linear: parity(a XOR b) == parity(a) XOR parity(b).
	// Purity relies on this when patching partial stripes.
	c, _ := New(5, 2)
	a := fillShards(t, c, 128, 7)
	b := fillShards(t, c, 128, 8)
	x := make([][]byte, c.TotalShards())
	for i := range x {
		x[i] = make([]byte, 128)
		for j := range x[i] {
			x[i][j] = a[i][j] ^ b[i][j]
		}
	}
	ok, err := c.Verify(x)
	if err != nil || !ok {
		t.Fatalf("linearity violated: Verify = %v, %v", ok, err)
	}
}

func BenchmarkEncode7x2(b *testing.B) {
	c, _ := New(7, 2)
	shards := make([][]byte, 9)
	r := sim.NewRand(1)
	for i := range shards {
		shards[i] = make([]byte, 128<<10)
		if i < 7 {
			r.Bytes(shards[i])
		}
	}
	b.SetBytes(7 * 128 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Encode(shards); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkReconstructOne7x2(b *testing.B) {
	c, _ := New(7, 2)
	shards := make([][]byte, 9)
	r := sim.NewRand(1)
	for i := range shards {
		shards[i] = make([]byte, 128<<10)
		if i < 7 {
			r.Bytes(shards[i])
		}
	}
	_ = c.Encode(shards)
	saved := bytes.Clone(shards[3])
	b.SetBytes(128 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		shards[3] = nil
		if err := c.ReconstructData(shards); err != nil {
			b.Fatal(err)
		}
	}
	if !bytes.Equal(shards[3], saved) {
		b.Fatal("bad reconstruction")
	}
}
