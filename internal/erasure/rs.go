package erasure

import (
	"errors"
	"fmt"
)

// Coder encodes K data shards into M parity shards and reconstructs missing
// shards from any K survivors. A Coder is immutable after construction and
// safe for concurrent use.
type Coder struct {
	k, m int
	// enc is the (k+m)×k systematic encoding matrix: the top k×k block is
	// the identity (data shards pass through), the bottom m×k block
	// generates parity.
	enc matrix
}

// Common errors returned by Coder methods.
var (
	ErrTooFewShards  = errors.New("erasure: not enough shards to reconstruct")
	ErrShardSize     = errors.New("erasure: shards have mismatched sizes")
	ErrInvalidShards = errors.New("erasure: invalid shard slice")
)

// New returns a Coder for k data and m parity shards. The paper's production
// geometry is k=7, m=2 (§4.2); tests also use smaller geometries.
func New(k, m int) (*Coder, error) {
	if k <= 0 || m <= 0 || k+m > 256 {
		return nil, fmt.Errorf("erasure: invalid geometry %d+%d", k, m)
	}
	// Build a systematic matrix from a Vandermonde matrix: multiply by the
	// inverse of its top k×k block so the top becomes the identity while
	// preserving the any-k-rows-invertible property.
	v := vandermonde(k+m, k)
	top := v.subRows(intRange(0, k))
	topInv, err := top.invert()
	if err != nil {
		// Vandermonde top blocks are always invertible; reaching this
		// indicates a bug in the field arithmetic.
		panic(err)
	}
	return &Coder{k: k, m: m, enc: v.mul(topInv)}, nil
}

// DataShards returns k.
func (c *Coder) DataShards() int { return c.k }

// ParityShards returns m.
func (c *Coder) ParityShards() int { return c.m }

// TotalShards returns k+m.
func (c *Coder) TotalShards() int { return c.k + c.m }

// Encode computes the m parity shards from the k data shards. shards must
// hold k+m equal-length slices; the first k are read, the last m are
// overwritten.
func (c *Coder) Encode(shards [][]byte) error {
	if err := c.checkShards(shards, false); err != nil {
		return err
	}
	c.encodeRange(shards, 0, len(shards[0]))
	return nil
}

// EncodeRange computes the parity bytes for columns [lo, hi) only. Parity
// is byte-wise, so any column partition of a stripe can be encoded
// independently — the segio flush fans ranges out across a worker pool and
// the concatenation is byte-identical to a single Encode call.
func (c *Coder) EncodeRange(shards [][]byte, lo, hi int) error {
	if err := c.checkShards(shards, false); err != nil {
		return err
	}
	if lo < 0 || hi > len(shards[0]) || lo > hi {
		return ErrInvalidShards
	}
	c.encodeRange(shards, lo, hi)
	return nil
}

func (c *Coder) encodeRange(shards [][]byte, lo, hi int) {
	if lo == hi {
		return
	}
	for p := 0; p < c.m; p++ {
		row := c.enc.row(c.k + p)
		out := shards[c.k+p][lo:hi]
		mulSet(out, shards[0][lo:hi], row[0])
		for d := 1; d < c.k; d++ {
			mulAdd(out, shards[d][lo:hi], row[d])
		}
	}
}

// Verify reports whether the parity shards are consistent with the data
// shards.
func (c *Coder) Verify(shards [][]byte) (bool, error) {
	if err := c.checkShards(shards, false); err != nil {
		return false, err
	}
	buf := make([]byte, len(shards[0]))
	for p := 0; p < c.m; p++ {
		row := c.enc.row(c.k + p)
		mulSet(buf, shards[0], row[0])
		for d := 1; d < c.k; d++ {
			mulAdd(buf, shards[d], row[d])
		}
		for i, b := range buf {
			if b != shards[c.k+p][i] {
				return false, nil
			}
		}
	}
	return true, nil
}

// Reconstruct rebuilds all missing shards in place. A shard is missing when
// its slice is nil; present shards must share one length. Reconstruction
// needs at least k present shards.
func (c *Coder) Reconstruct(shards [][]byte) error {
	if err := c.checkShards(shards, true); err != nil {
		return err
	}
	size := shardSize(shards)
	present := make([]int, 0, c.k)
	missing := make([]int, 0, c.m)
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		} else {
			missing = append(missing, i)
		}
	}
	if len(missing) == 0 {
		return nil
	}
	if len(present) < c.k {
		return ErrTooFewShards
	}
	present = present[:c.k] // any k survivors suffice

	// Invert the k×k matrix that maps data shards to the surviving shards;
	// multiplying survivors by the inverse recovers the data shards.
	subInv, err := c.enc.subRows(present).invert()
	if err != nil {
		return err
	}

	// Recover missing data shards directly.
	data := make([][]byte, c.k)
	for d := 0; d < c.k; d++ {
		if shards[d] != nil {
			data[d] = shards[d]
		}
	}
	for _, idx := range missing {
		if idx >= c.k {
			continue
		}
		out := make([]byte, size)
		row := subInv.row(idx)
		mulSet(out, shards[present[0]], row[0])
		for j := 1; j < c.k; j++ {
			mulAdd(out, shards[present[j]], row[j])
		}
		shards[idx] = out
		data[idx] = out
	}
	// With all data shards in hand, recompute missing parity.
	for _, idx := range missing {
		if idx < c.k {
			continue
		}
		out := make([]byte, size)
		row := c.enc.row(idx)
		mulSet(out, data[0], row[0])
		for d := 1; d < c.k; d++ {
			mulAdd(out, data[d], row[d])
		}
		shards[idx] = out
	}
	return nil
}

// ReconstructData rebuilds only the missing data shards (parity left nil).
// Purity's read path uses this to serve a read that lands on a busy or
// failed drive without recomputing parity (§4.4).
func (c *Coder) ReconstructData(shards [][]byte) error {
	if err := c.checkShards(shards, true); err != nil {
		return err
	}
	size := shardSize(shards)
	present := make([]int, 0, c.k)
	for i, s := range shards {
		if s != nil {
			present = append(present, i)
		}
	}
	if len(present) < c.k {
		return ErrTooFewShards
	}
	present = present[:c.k]
	needed := false
	for d := 0; d < c.k; d++ {
		if shards[d] == nil {
			needed = true
		}
	}
	if !needed {
		return nil
	}
	subInv, err := c.enc.subRows(present).invert()
	if err != nil {
		return err
	}
	for d := 0; d < c.k; d++ {
		if shards[d] != nil {
			continue
		}
		out := make([]byte, size)
		row := subInv.row(d)
		mulSet(out, shards[present[0]], row[0])
		for j := 1; j < c.k; j++ {
			mulAdd(out, shards[present[j]], row[j])
		}
		shards[d] = out
	}
	return nil
}

// Split slices data into k data shards plus m empty parity shards, padding
// the tail shard with zeros. Join reverses it.
func (c *Coder) Split(data []byte) [][]byte {
	per := (len(data) + c.k - 1) / c.k
	if per == 0 {
		per = 1
	}
	shards := make([][]byte, c.k+c.m)
	for i := 0; i < c.k; i++ {
		shards[i] = make([]byte, per)
		lo := i * per
		if lo < len(data) {
			copy(shards[i], data[lo:])
		}
	}
	for i := c.k; i < c.k+c.m; i++ {
		shards[i] = make([]byte, per)
	}
	return shards
}

// Join concatenates the data shards and returns the first n bytes.
func (c *Coder) Join(shards [][]byte, n int) []byte {
	out := make([]byte, 0, n)
	for i := 0; i < c.k && len(out) < n; i++ {
		out = append(out, shards[i]...)
	}
	return out[:n]
}

func (c *Coder) checkShards(shards [][]byte, allowNil bool) error {
	if len(shards) != c.k+c.m {
		return ErrInvalidShards
	}
	size := -1
	for _, s := range shards {
		if s == nil {
			if !allowNil {
				return ErrInvalidShards
			}
			continue
		}
		if size < 0 {
			size = len(s)
		} else if len(s) != size {
			return ErrShardSize
		}
	}
	if size <= 0 {
		return ErrInvalidShards
	}
	return nil
}

func shardSize(shards [][]byte) int {
	for _, s := range shards {
		if s != nil {
			return len(s)
		}
	}
	return 0
}

func intRange(lo, hi int) []int {
	out := make([]int, hi-lo)
	for i := range out {
		out[i] = lo + i
	}
	return out
}
