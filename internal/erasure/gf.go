// Package erasure implements systematic Reed–Solomon erasure coding over
// GF(2^8), the redundancy scheme Purity stripes across drives (§4.2 of the
// paper, default geometry 7 data + 2 parity). Losing up to M shards — drive
// failures, or drives deliberately skipped because they are busy writing
// (§4.4) — is recoverable from any K of the K+M shards.
package erasure

import "encoding/binary"

// GF(2^8) with the primitive polynomial x^8+x^4+x^3+x^2+1 (0x11d), the same
// field used by most storage RS implementations.
const fieldPoly = 0x11d

var (
	expTable [512]byte // doubled so mul can skip a mod 255
	logTable [256]byte
	// mulTable[c][b] = c*b. 64 KiB buys the encode/reconstruct inner loops
	// a single indexed load per byte with no per-call row construction —
	// the kernels below are the engine's hottest pure-CPU arithmetic.
	mulTable [256][256]byte
)

func init() {
	x := 1
	for i := 0; i < 255; i++ {
		expTable[i] = byte(x)
		logTable[x] = byte(i)
		x <<= 1
		if x&0x100 != 0 {
			x ^= fieldPoly
		}
	}
	for i := 255; i < 512; i++ {
		expTable[i] = expTable[i-255]
	}
	for c := 1; c < 256; c++ {
		lc := int(logTable[c])
		for b := 1; b < 256; b++ {
			mulTable[c][b] = expTable[lc+int(logTable[b])]
		}
	}
}

// gfMul returns a*b in GF(2^8).
func gfMul(a, b byte) byte {
	if a == 0 || b == 0 {
		return 0
	}
	return expTable[int(logTable[a])+int(logTable[b])]
}

// gfDiv returns a/b in GF(2^8). Division by zero panics.
func gfDiv(a, b byte) byte {
	if b == 0 {
		panic("erasure: division by zero in GF(2^8)")
	}
	if a == 0 {
		return 0
	}
	return expTable[int(logTable[a])+255-int(logTable[b])]
}

// gfInv returns the multiplicative inverse of a. Zero has no inverse.
func gfInv(a byte) byte {
	if a == 0 {
		panic("erasure: zero has no inverse in GF(2^8)")
	}
	return expTable[255-int(logTable[a])]
}

// gfExp returns a**n in GF(2^8).
func gfExp(a byte, n int) byte {
	if n == 0 {
		return 1
	}
	if a == 0 {
		return 0
	}
	l := (int(logTable[a]) * n) % 255
	if l < 0 {
		l += 255
	}
	return expTable[l]
}

// mulAdd computes dst[i] ^= c * src[i] for all i. This is the inner loop of
// both encoding and reconstruction; a row-times-shard accumulate.
func mulAdd(dst, src []byte, c byte) {
	if c == 0 {
		return
	}
	if c == 1 {
		xorBytes(dst, src)
		return
	}
	row := &mulTable[c]
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] ^= row[src[i]]
		dst[i+1] ^= row[src[i+1]]
		dst[i+2] ^= row[src[i+2]]
		dst[i+3] ^= row[src[i+3]]
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= row[src[i]]
	}
}

// mulSet computes dst[i] = c * src[i] for all i.
func mulSet(dst, src []byte, c byte) {
	if c == 0 {
		for i := range dst[:len(src)] {
			dst[i] = 0
		}
		return
	}
	if c == 1 {
		copy(dst, src)
		return
	}
	row := &mulTable[c]
	n := len(src) &^ 3
	for i := 0; i < n; i += 4 {
		dst[i] = row[src[i]]
		dst[i+1] = row[src[i+1]]
		dst[i+2] = row[src[i+2]]
		dst[i+3] = row[src[i+3]]
	}
	for i := n; i < len(src); i++ {
		dst[i] = row[src[i]]
	}
}

// xorBytes computes dst[i] ^= src[i] eight bytes at a time — the c==1 case
// of mulAdd, which for systematic RS is one of every K coefficient rows.
func xorBytes(dst, src []byte) {
	n := len(src) &^ 7
	for i := 0; i < n; i += 8 {
		binary.LittleEndian.PutUint64(dst[i:],
			binary.LittleEndian.Uint64(dst[i:])^binary.LittleEndian.Uint64(src[i:]))
	}
	for i := n; i < len(src); i++ {
		dst[i] ^= src[i]
	}
}
