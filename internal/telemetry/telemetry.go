// Package telemetry provides the latency histograms, counters and data
// reduction accounting that drive the experiment harness. The paper's
// headline numbers — 99.9% latencies under 1 ms, 5.4× average reduction —
// are percentile and ratio queries over exactly this kind of state (§1,
// §5.1).
package telemetry

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"purity/internal/sim"
)

// Counter is a lock-free event counter for paths too hot (or too error-ish)
// for a histogram — e.g. segment-read or cblock-unpack failures, which used
// to be debug prints. Safe for concurrent use.
type Counter struct{ v atomic.Int64 }

// NewCounter returns a zeroed counter.
func NewCounter() *Counter { return &Counter{} }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current count.
func (c *Counter) Load() int64 { return c.v.Load() }

// Frontend aggregates the TCP front end's wire-level health counters —
// events the server used to drop on the floor when a connection died or a
// frame failed to parse. A nonzero MalformedFrames or OversizedFrames rate
// is the first sign of a buggy (or hostile) initiator; AbnormalDisconnects
// separates clients that vanished mid-frame from clean EOFs. All fields are
// lock-free Counters, safe for concurrent use from every connection.
type Frontend struct {
	// Connection census.
	LegacyConns    Counter // connections served in v1 lock-step mode
	PipelinedConns Counter // connections that negotiated the tagged protocol

	// Wire-level failures.
	MalformedFrames     Counter // structurally invalid frames / undecodable payloads
	OversizedFrames     Counter // frames (or read requests) beyond MaxFrame bounds
	AbnormalDisconnects Counter // connections that died mid-stream (not a clean EOF)
	DuplicateTags       Counter // v2 tags reused while still in flight (connection killed)
	RejectedReads       Counter // OpRead lengths clamped against wire.MaxReadLen

	// Admission control.
	AdmissionWaits  Counter // requests that blocked on a tenant window or the byte budget
	AdmissionAborts Counter // admission waits abandoned because the connection died or the server drained
	AcceptRetries   Counter // transient Accept failures survived with backoff

	// Liveness deadlines (the admission-slot leak fix: a dead client can no
	// longer pin a tenant slot or in-flight bytes forever).
	IdleTimeouts  Counter // connections reaped by the idle/read deadline
	WriteTimeouts Counter // response writes abandoned by the write deadline

	// High availability.
	SessionsBound       Counter // hellos that negotiated (opened or resumed) a session
	NotPrimaryRedirects Counter // requests refused with CodeNotPrimary (fenced controller)
	RetryableRejects    Counter // requests refused with CodeRetryable (failover/drain window)
	Failovers           Counter // takeovers completed by this server's monitor
	FailoverNanos       Counter // wall-clock ns spent in those takeovers
	Drains              Counter // graceful shutdowns completed
	DrainNanos          Counter // wall-clock ns spent draining
}

// Summary renders the counters on one line, in a fixed order.
func (f *Frontend) Summary() string {
	return fmt.Sprintf(
		"conns legacy=%d pipelined=%d; frames malformed=%d oversized=%d; "+
			"disconnects abnormal=%d; tags duplicate=%d; reads rejected=%d; "+
			"admission waits=%d aborts=%d; accept retries=%d; "+
			"timeouts idle=%d write=%d; sessions=%d; "+
			"redirects notprimary=%d retryable=%d; failovers=%d (%v); drains=%d (%v)",
		f.LegacyConns.Load(), f.PipelinedConns.Load(),
		f.MalformedFrames.Load(), f.OversizedFrames.Load(),
		f.AbnormalDisconnects.Load(), f.DuplicateTags.Load(), f.RejectedReads.Load(),
		f.AdmissionWaits.Load(), f.AdmissionAborts.Load(), f.AcceptRetries.Load(),
		f.IdleTimeouts.Load(), f.WriteTimeouts.Load(), f.SessionsBound.Load(),
		f.NotPrimaryRedirects.Load(), f.RetryableRejects.Load(),
		f.Failovers.Load(), time.Duration(f.FailoverNanos.Load()),
		f.Drains.Load(), time.Duration(f.DrainNanos.Load()))
}

// Histogram records durations in logarithmic buckets (about 24 buckets per
// decade) for cheap, accurate-enough percentiles. Safe for concurrent use.
type Histogram struct {
	mu     sync.Mutex
	counts []uint64
	total  uint64
	sum    sim.Time
	max    sim.Time
}

// bucketCount covers the full sim.Time range with sub-4% resolution.
const bucketCount = 64 * 32

// bucketFor maps a duration to its bucket: exact buckets below 32 ns, then
// 32 sub-buckets per power of two.
func bucketFor(d sim.Time) int {
	if d <= 0 {
		return 0
	}
	v := uint64(d)
	if v < 32 {
		return int(v)
	}
	// Position of the highest set bit (>= 5 here).
	msb := 63
	for v>>uint(msb)&1 == 0 {
		msb--
	}
	sub := int(v>>(uint(msb)-5)) & 31
	idx := msb*32 + sub
	if idx >= bucketCount {
		idx = bucketCount - 1
	}
	return idx
}

// bucketUpper returns an upper-bound representative duration for a bucket.
func bucketUpper(idx int) sim.Time {
	if idx < 32 {
		return sim.Time(idx)
	}
	msb := idx / 32
	sub := idx % 32
	base := uint64(1) << uint(msb)
	return sim.Time(base + uint64(sub+1)*(base>>5))
}

// NewHistogram returns an empty histogram.
func NewHistogram() *Histogram {
	return &Histogram{counts: make([]uint64, bucketCount)}
}

// Record adds one observation.
func (h *Histogram) Record(d sim.Time) {
	h.mu.Lock()
	h.counts[bucketFor(d)]++
	h.total++
	h.sum += d
	if d > h.max {
		h.max = d
	}
	h.mu.Unlock()
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.total
}

// Mean returns the mean observation.
func (h *Histogram) Mean() sim.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	return sim.Time(int64(h.sum) / int64(h.total))
}

// Max returns the largest observation.
func (h *Histogram) Max() sim.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.max
}

// Percentile returns an upper bound for the p-th percentile (p in [0,100]).
func (h *Histogram) Percentile(p float64) sim.Time {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.total == 0 {
		return 0
	}
	threshold := uint64(p / 100 * float64(h.total))
	if threshold >= h.total {
		return h.max
	}
	var cum uint64
	for i, c := range h.counts {
		cum += c
		if cum > threshold {
			u := bucketUpper(i)
			if u > h.max {
				return h.max
			}
			return u
		}
	}
	return h.max
}

// Summary renders count/mean/p50/p95/p99/p99.9/max on one line.
func (h *Histogram) Summary() string {
	return fmt.Sprintf("n=%d mean=%v p50=%v p95=%v p99=%v p99.9=%v max=%v",
		h.Count(), h.Mean(), h.Percentile(50), h.Percentile(95),
		h.Percentile(99), h.Percentile(99.9), h.Max())
}

// Reset clears the histogram.
func (h *Histogram) Reset() {
	h.mu.Lock()
	defer h.mu.Unlock()
	for i := range h.counts {
		h.counts[i] = 0
	}
	h.total, h.sum, h.max = 0, 0, 0
}

// Reduction tracks data-reduction accounting: logical bytes the
// applications wrote versus physical bytes that reached flash, split by
// mechanism so experiments can attribute savings (§5: 5.4× average).
type Reduction struct {
	mu            sync.Mutex
	LogicalBytes  int64 // application writes
	PhysicalBytes int64 // compressed bytes stored
	DedupBytes    int64 // logical bytes satisfied by existing data
	ZeroBytes     int64 // logical bytes never materialized (thin provisioning)
}

// AddWrite records one write's accounting.
func (r *Reduction) AddWrite(logical, physical, deduped int64) {
	r.mu.Lock()
	r.LogicalBytes += logical
	r.PhysicalBytes += physical
	r.DedupBytes += deduped
	r.mu.Unlock()
}

// Ratio returns the overall data reduction factor, excluding thin
// provisioning (as the paper's 5.4× figure does).
func (r *Reduction) Ratio() float64 {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.PhysicalBytes == 0 {
		return 0
	}
	return float64(r.LogicalBytes) / float64(r.PhysicalBytes)
}

// ReductionSnapshot is a point-in-time copy of the counters.
type ReductionSnapshot struct {
	LogicalBytes  int64
	PhysicalBytes int64
	DedupBytes    int64
	ZeroBytes     int64
}

// Snapshot returns a copy of the counters.
func (r *Reduction) Snapshot() ReductionSnapshot {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ReductionSnapshot{
		LogicalBytes:  r.LogicalBytes,
		PhysicalBytes: r.PhysicalBytes,
		DedupBytes:    r.DedupBytes,
		ZeroBytes:     r.ZeroBytes,
	}
}

// Series is a labelled (x, y) series for figure-style experiment output.
type Series struct {
	Label  string
	Points []Point
}

// Point is one sample of a series.
type Point struct {
	X, Y float64
}

// Sorted returns the points ordered by X.
func (s Series) Sorted() []Point {
	out := append([]Point(nil), s.Points...)
	sort.Slice(out, func(i, j int) bool { return out[i].X < out[j].X })
	return out
}
