package telemetry

import (
	"testing"

	"purity/internal/sim"
)

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Percentile(99) != 0 || h.Mean() != 0 {
		t.Fatal("empty histogram not zero")
	}
	for i := 1; i <= 1000; i++ {
		h.Record(sim.Time(i) * sim.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d", h.Count())
	}
	if h.Max() != 1000*sim.Microsecond {
		t.Fatalf("Max = %v", h.Max())
	}
	mean := h.Mean()
	if mean < 480*sim.Microsecond || mean > 520*sim.Microsecond {
		t.Fatalf("Mean = %v, want ≈500µs", mean)
	}
	// Percentiles within bucket resolution (≈4%).
	p50 := h.Percentile(50)
	if p50 < 480*sim.Microsecond || p50 > 530*sim.Microsecond {
		t.Fatalf("p50 = %v", p50)
	}
	p999 := h.Percentile(99.9)
	if p999 < 950*sim.Microsecond || p999 > 1050*sim.Microsecond {
		t.Fatalf("p99.9 = %v", p999)
	}
	if h.Percentile(100) != h.Max() {
		t.Fatalf("p100 = %v, max = %v", h.Percentile(100), h.Max())
	}
}

func TestHistogramSkewedTail(t *testing.T) {
	h := NewHistogram()
	for i := 0; i < 999; i++ {
		h.Record(100 * sim.Microsecond)
	}
	h.Record(50 * sim.Millisecond)
	if p := h.Percentile(50); p > 110*sim.Microsecond {
		t.Fatalf("p50 = %v", p)
	}
	if p := h.Percentile(99.95); p < 40*sim.Millisecond {
		t.Fatalf("p99.95 = %v, want the outlier", p)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Record(sim.Millisecond)
	h.Reset()
	if h.Count() != 0 || h.Max() != 0 {
		t.Fatal("Reset incomplete")
	}
}

func TestHistogramExtremes(t *testing.T) {
	h := NewHistogram()
	h.Record(0)
	h.Record(-5)
	h.Record(1)
	h.Record(17 * sim.Second)
	if h.Count() != 4 {
		t.Fatal("extreme values dropped")
	}
	if h.Percentile(100) != 17*sim.Second {
		t.Fatalf("max percentile = %v", h.Percentile(100))
	}
}

func TestBucketMonotone(t *testing.T) {
	last := -1
	for _, d := range []sim.Time{1, 2, 31, 32, 33, 63, 64, 1000, 4096, 100000, sim.Millisecond, sim.Second} {
		b := bucketFor(d)
		if b < last {
			t.Fatalf("bucketFor(%v) = %d < previous %d", d, b, last)
		}
		last = b
		if up := bucketUpper(b); up < d {
			t.Fatalf("bucketUpper(%d) = %v < %v", b, up, d)
		}
	}
}

func TestReduction(t *testing.T) {
	var r Reduction
	r.AddWrite(1000, 250, 0)
	r.AddWrite(1000, 0, 1000) // fully deduped
	if got := r.Ratio(); got != 8 {
		t.Fatalf("Ratio = %v, want 8 (2000 logical / 250 physical)", got)
	}
	s := r.Snapshot()
	if s.LogicalBytes != 2000 || s.DedupBytes != 1000 {
		t.Fatalf("snapshot = %+v", s)
	}
	var empty Reduction
	if empty.Ratio() != 0 {
		t.Fatal("empty ratio not 0")
	}
}

func TestSeriesSorted(t *testing.T) {
	s := Series{Label: "x", Points: []Point{{3, 1}, {1, 2}, {2, 3}}}
	p := s.Sorted()
	if p[0].X != 1 || p[1].X != 2 || p[2].X != 3 {
		t.Fatalf("sorted = %+v", p)
	}
	if s.Points[0].X != 3 {
		t.Fatal("Sorted mutated the series")
	}
}
