package client

// HA initiator tests: reconnect + idempotent replay under injected faults,
// per-op deadlines on blackholed connections, NotPrimary redirect handling.
// These run under -race in check.sh.

import (
	"bytes"
	"fmt"
	"net"
	"sync"
	"testing"
	"time"

	"purity/internal/chaos"
	"purity/internal/controller"
	"purity/internal/core"
	"purity/internal/server"
	"purity/internal/sim"
)

// startHAServer brings up one server for a role on loopback.
func startHAServer(t *testing.T, pair *controller.Pair, via controller.Role) string {
	t.Helper()
	l, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { l.Close() })
	s := server.NewWithConfig(pair, via, server.Config{})
	go s.Serve(l)
	return l.Addr().String()
}

func newHAPair(t *testing.T) *controller.Pair {
	t.Helper()
	pair, err := controller.NewPair(controller.DefaultConfig(), core.TestConfig())
	if err != nil {
		t.Fatal(err)
	}
	return pair
}

func waitFor(t *testing.T, what string, cond func() bool) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for !cond() {
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %s", what)
		}
		time.Sleep(time.Millisecond)
	}
}

// TestHAWritesSurviveConnectionChaos: with the injector resetting and
// tearing connections, every acked write must land exactly once and read
// back intact — the transparent-retry contract.
func TestHAWritesSurviveConnectionChaos(t *testing.T) {
	pair := newHAPair(t)
	addr := startHAServer(t, pair, controller.Primary)
	vol, _, err := pair.Array().CreateVolume(0, "v", 8<<20)
	if err != nil {
		t.Fatal(err)
	}

	inj := chaos.New(chaos.Config{Seed: 42, ResetProb: 0.05, TearProb: 0.05})
	h, err := NewHA(HAConfig{
		Addrs:     []string{addr},
		Dial:      inj.Dial,
		OpTimeout: 2 * time.Second,
		Seed:      7,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	const writers = 4
	const opsPer = 16
	var wg sync.WaitGroup
	errs := make(chan error, writers)
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			buf := make([]byte, 4096)
			for i := 0; i < opsPer; i++ {
				off := int64(w*opsPer+i) * 4096
				sim.NewRand(uint64(off + 1)).Bytes(buf)
				if err := h.WriteAt(uint64(vol), off, buf); err != nil {
					errs <- fmt.Errorf("writer %d op %d: %w", w, i, err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Fatal(err)
	}

	// Every acked write is present exactly once.
	tab := pair.Sessions()
	if got := tab.AppliedOK.Load(); got != writers*opsPer {
		t.Fatalf("AppliedOK = %d, want %d (duplicate or lost applies)", got, writers*opsPer)
	}
	if tab.Overflows.Load() != 0 {
		t.Fatalf("Overflows = %d", tab.Overflows.Load())
	}
	want := make([]byte, 4096)
	for w := 0; w < writers; w++ {
		for i := 0; i < opsPer; i++ {
			off := int64(w*opsPer+i) * 4096
			sim.NewRand(uint64(off + 1)).Bytes(want)
			got, err := h.ReadAt(uint64(vol), off, 4096)
			if err != nil {
				t.Fatalf("read back off %d: %v", off, err)
			}
			if !bytes.Equal(got, want) {
				t.Fatalf("acked write at off %d lost or corrupted", off)
			}
		}
	}
	if inj.Stats().Resets.Load()+inj.Stats().TornWrites.Load() == 0 {
		t.Fatal("chaos injected nothing; the test proved nothing")
	}
	if h.Stats().Connects.Load() < 2 {
		t.Fatalf("no reconnects happened: %s", h.Stats().Summary())
	}
}

// TestHADeadlineFiresOnBlackhole: a blackholed connection (reads return
// nothing, forever) must not hang the caller — the per-op deadline condemns
// it and the op completes on a clean reconnect.
func TestHADeadlineFiresOnBlackhole(t *testing.T) {
	pair := newHAPair(t)
	addr := startHAServer(t, pair, controller.Primary)
	vol, _, err := pair.Array().CreateVolume(0, "v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}

	inj := chaos.New(chaos.Config{Seed: 3, BlackholeProb: 1.0})
	h, err := NewHA(HAConfig{
		Addrs:       []string{addr},
		Dial:        inj.Dial,
		OpTimeout:   100 * time.Millisecond,
		BackoffBase: 5 * time.Millisecond,
		Seed:        9,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()

	done := make(chan error, 1)
	go func() { done <- h.WriteAt(uint64(vol), 0, make([]byte, 4096)) }()
	// The first attempts blackhole; the deadline must fire.
	waitFor(t, "deadline abort", func() bool {
		return h.Stats().DeadlineAborts.Load() >= 1
	})
	// Lift the fault: new connections are clean, the replay lands.
	inj.SetConfig(chaos.Config{Seed: 3})
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("write after blackhole lifted: %v", err)
		}
	case <-time.After(10 * time.Second):
		t.Fatal("write never completed after blackhole lifted")
	}
	if pair.Sessions().AppliedOK.Load() != 1 {
		t.Fatalf("AppliedOK = %d", pair.Sessions().AppliedOK.Load())
	}
}

// TestHANotPrimaryRedirect: a client pointed at a fenced ex-primary must
// follow CodeNotPrimary to the survivor transparently.
func TestHANotPrimaryRedirect(t *testing.T) {
	pair := newHAPair(t)
	primAddr := startHAServer(t, pair, controller.Primary)
	secAddr := startHAServer(t, pair, controller.Secondary)
	vol, _, err := pair.Array().CreateVolume(0, "v", 1<<20)
	if err != nil {
		t.Fatal(err)
	}
	data := make([]byte, 4096)
	sim.NewRand(5).Bytes(data)
	if _, err := pair.Array().WriteAt(0, vol, 0, data); err != nil {
		t.Fatal(err)
	}
	// Fail over: the primary role is now fenced.
	pair.KillPrimary()
	if _, _, err := pair.FailoverTo(controller.Secondary, 0); err != nil {
		t.Fatal(err)
	}

	h, err := NewHA(HAConfig{Addrs: []string{primAddr, secAddr}, Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	defer h.Close()
	got, err := h.ReadAt(uint64(vol), 0, 4096)
	if err != nil || !bytes.Equal(got, data) {
		t.Fatalf("redirected read: %v", err)
	}
	if h.Stats().Redirects.Load() == 0 {
		t.Fatalf("no redirect recorded: %s", h.Stats().Summary())
	}
	if err := h.WriteAt(uint64(vol), 4096, data); err != nil {
		t.Fatalf("redirected write: %v", err)
	}
}
