// HA initiator: the transparent-retry side of controller failover. An
// HAClient holds one live pipelined connection to whichever controller port
// currently answers, and survives everything the chaos injector (and a real
// failover) throws at it:
//
//   - transport errors and per-op deadline hits condemn the connection and
//     reconnect with capped exponential backoff plus jitter;
//   - CodeNotPrimary redirects rotate to the peer controller's address;
//   - CodeRetryable (mid-failover, draining) backs off and retries;
//   - writes carry session-scoped idempotency sequence numbers, so a replay
//     after an ambiguous failure (connection died between request and ack)
//     returns the recorded outcome instead of applying twice.
//
// The session rides the controller Pair, not a single server, which is why
// a reconnect to the surviving controller still resumes it.
package client

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"sync/atomic"
	"time"

	"purity/internal/sim"
	"purity/internal/telemetry"
	"purity/internal/wire"
)

// HAConfig tunes the HA initiator.
type HAConfig struct {
	// Addrs are the controller ports, in preference order; redirects and
	// connect failures rotate through them.
	Addrs []string
	// Dial opens transports (default net.Dial; chaos.Injector.Dial fits).
	Dial DialFunc
	// OpTimeout is the per-op deadline (default 2 s). A hit condemns the
	// connection and replays the op on a fresh one.
	OpTimeout time.Duration
	// MaxAttempts bounds tries per op before giving up (default 64) — with
	// backoff this comfortably covers a full failover episode.
	MaxAttempts int
	// BackoffBase/BackoffCap shape the retry backoff (default 5 ms / 500 ms).
	BackoffBase time.Duration
	BackoffCap  time.Duration
	// Seed feeds the jitter stream (deterministic, like the chaos injector).
	Seed uint64
}

func (c HAConfig) normalize() HAConfig {
	if c.Dial == nil {
		c.Dial = net.Dial
	}
	if c.OpTimeout <= 0 {
		c.OpTimeout = 2 * time.Second
	}
	if c.MaxAttempts <= 0 {
		c.MaxAttempts = 64
	}
	if c.BackoffBase <= 0 {
		c.BackoffBase = 5 * time.Millisecond
	}
	if c.BackoffCap <= 0 {
		c.BackoffCap = 500 * time.Millisecond
	}
	return c
}

// HAStats counts the resilience machinery's activations.
type HAStats struct {
	Connects       telemetry.Counter // connections established (first + re)
	Redirects      telemetry.Counter // CodeNotPrimary answers that rotated ports
	Retries        telemetry.Counter // op attempts beyond the first
	Replays        telemetry.Counter // idempotent writes resent with their original seq
	DeadlineAborts telemetry.Counter // ops abandoned by the per-op deadline
}

// Summary renders the counters on one line.
func (s *HAStats) Summary() string {
	return fmt.Sprintf("connects=%d redirects=%d retries=%d replays=%d deadline aborts=%d",
		s.Connects.Load(), s.Redirects.Load(), s.Retries.Load(),
		s.Replays.Load(), s.DeadlineAborts.Load())
}

// ErrHAClosed fails ops issued after Close.
var ErrHAClosed = errors.New("client: HA client closed")

// HAClient is a failover-transparent initiator. Safe for concurrent use;
// in-flight depth is simply how many goroutines call it at once (keep that
// below the server's session window, see controller.DefaultSessionWindow).
type HAClient struct {
	cfg   HAConfig
	seq   atomic.Uint64 // idempotency sequence numbers, one per logical write
	stats HAStats

	mu      sync.Mutex
	c       *Client // live connection, nil while down
	addrIdx int
	session uint64
	rng     *sim.Rand
	closed  bool
}

// NewHA returns an HA initiator over the given controller addresses. The
// first connection is made lazily, so constructing one while the array is
// mid-failover is fine.
func NewHA(cfg HAConfig) (*HAClient, error) {
	if len(cfg.Addrs) == 0 {
		return nil, errors.New("client: HAConfig.Addrs is empty")
	}
	cfg = cfg.normalize()
	return &HAClient{cfg: cfg, rng: sim.NewRand(cfg.Seed + 1)}, nil
}

// Stats exposes the resilience counters.
func (h *HAClient) Stats() *HAStats { return &h.stats }

// Session returns the replay session ID (0 until the first connection).
func (h *HAClient) Session() uint64 {
	h.mu.Lock()
	defer h.mu.Unlock()
	return h.session
}

// Close condemns the current connection and fails all future ops.
func (h *HAClient) Close() error {
	h.mu.Lock()
	c := h.c
	h.c = nil
	h.closed = true
	h.mu.Unlock()
	if c != nil {
		return c.Close()
	}
	return nil
}

// conn returns the live connection, dialing (and resuming the session) if
// necessary. A connect failure rotates to the next address so the retry
// lands on the peer port.
func (h *HAClient) conn() (*Client, error) {
	h.mu.Lock()
	if h.closed {
		h.mu.Unlock()
		return nil, ErrHAClosed
	}
	if h.c != nil {
		c := h.c
		h.mu.Unlock()
		return c, nil
	}
	addr := h.cfg.Addrs[h.addrIdx%len(h.cfg.Addrs)]
	session := h.session
	h.mu.Unlock()

	// Dial outside the lock: a slow (or blackholed) handshake must not wedge
	// Close and concurrent ops. The hello exchange is bounded by OpTimeout.
	c, err := DialSession(addr, h.cfg.Dial, session, h.cfg.OpTimeout)

	h.mu.Lock()
	defer h.mu.Unlock()
	if err != nil {
		h.addrIdx++
		return nil, err
	}
	if h.closed {
		//lint:ignore errdrop closing a connection that lost the race with Close; ErrHAClosed is the answer
		c.Close()
		return nil, ErrHAClosed
	}
	if h.c != nil {
		// A concurrent op already reconnected; use the winner.
		//lint:ignore errdrop redundant connection from a lost dial race
		c.Close()
		return h.c, nil
	}
	c.SetOpTimeout(h.cfg.OpTimeout)
	h.session = c.Session()
	h.c = c
	h.stats.Connects.Inc()
	return c, nil
}

// condemn drops a connection that failed (only if it is still the current
// one — a concurrent op may already have reconnected). rotate additionally
// moves to the next address, for NotPrimary redirects.
func (h *HAClient) condemn(c *Client, rotate bool) {
	h.mu.Lock()
	if h.c == c {
		h.c = nil
	}
	if rotate {
		h.addrIdx++
	}
	h.mu.Unlock()
	//lint:ignore errdrop the op failure that triggered condemnation is the error that matters; close is best-effort
	c.Close()
}

// backoff sleeps the capped-exponential, jittered retry delay and returns
// the next delay.
func (h *HAClient) backoff(cur time.Duration) time.Duration {
	next := cur * 2
	if cur == 0 {
		next = h.cfg.BackoffBase
	}
	if next > h.cfg.BackoffCap {
		next = h.cfg.BackoffCap
	}
	h.mu.Lock()
	jitter := time.Duration(h.rng.Int63n(int64(next)/2 + 1))
	h.mu.Unlock()
	time.Sleep(next/2 + jitter)
	return next
}

// do runs one logical op through the retry machinery. f runs against the
// current connection; replay reports whether a retry means the request may
// execute a second time (true only for ops that are idempotent by
// construction — reads, or writes carrying a seq).
func (h *HAClient) do(replayable bool, f func(*Client) error) error {
	var delay time.Duration
	var lastErr error
	for attempt := 0; attempt < h.cfg.MaxAttempts; attempt++ {
		if attempt > 0 {
			h.stats.Retries.Inc()
			delay = h.backoff(delay)
		}
		c, err := h.conn()
		if err != nil {
			if errors.Is(err, ErrHAClosed) {
				return err
			}
			if errors.Is(err, os.ErrDeadlineExceeded) {
				// A blackholed handshake counts as a deadline abort too.
				h.stats.DeadlineAborts.Inc()
			}
			lastErr = err
			continue
		}
		err = f(c)
		if err == nil {
			return nil
		}
		lastErr = err
		var re *wire.RemoteError
		if errors.As(err, &re) {
			switch re.Code {
			case wire.CodeNotPrimary:
				// This controller is fenced: re-resolve to the survivor.
				h.stats.Redirects.Inc()
				h.condemn(c, true)
			case wire.CodeRetryable:
				// Mid-failover or draining: the op was not applied. Keep the
				// connection, back off, retry.
			default:
				// A definitive server answer (bad volume, too large, ...).
				return err
			}
			continue
		}
		// Transport failure or deadline: ambiguous — the op may or may not
		// have been applied. Only replayable ops may go around again.
		if errors.Is(err, os.ErrDeadlineExceeded) {
			h.stats.DeadlineAborts.Inc()
		}
		h.condemn(c, false)
		if !replayable {
			return fmt.Errorf("client: ambiguous failure on non-replayable op: %w", err)
		}
	}
	return fmt.Errorf("client: gave up after %d attempts: %w", h.cfg.MaxAttempts, lastErr)
}

// WriteAt writes through the idempotent-replay path: the op gets a session
// sequence number once, and every retry resends the SAME seq, so the array
// applies it at most once no matter how many times the wire eats the ack.
func (h *HAClient) WriteAt(vol uint64, off int64, data []byte) error {
	seq := h.seq.Add(1)
	first := true
	return h.do(true, func(c *Client) error {
		if !first {
			h.stats.Replays.Inc()
		}
		first = false
		return c.WriteIdem(seq, vol, off, data)
	})
}

// ReadAt reads; naturally idempotent, so retries are unrestricted.
func (h *HAClient) ReadAt(vol uint64, off int64, n int) ([]byte, error) {
	var out []byte
	err := h.do(true, func(c *Client) error {
		var e error
		out, e = c.ReadAt(vol, off, n)
		return e
	})
	return out, err
}

// CreateVolume provisions a volume. Control ops retry on clean rejections
// (NotPrimary/Retryable, where the op was not applied) but surface
// ambiguous transport failures to the caller rather than risk re-running a
// non-idempotent op.
func (h *HAClient) CreateVolume(name string, sizeBytes int64) (uint64, error) {
	var id uint64
	err := h.do(false, func(c *Client) error {
		var e error
		id, e = c.CreateVolume(name, sizeBytes)
		return e
	})
	return id, err
}

// OpenVolume resolves a volume name to (id, size).
func (h *HAClient) OpenVolume(name string) (uint64, int64, error) {
	var id uint64
	var size int64
	err := h.do(true, func(c *Client) error {
		var e error
		id, size, e = c.OpenVolume(name)
		return e
	})
	return id, size, err
}

// Stats returns the current server's formatted statistics.
func (h *HAClient) ServerStats() (string, error) {
	var text string
	err := h.do(true, func(c *Client) error {
		var e error
		text, e = c.Stats()
		return e
	})
	return text, err
}
