// Package client is the Go client for the wire protocol — what an
// application host's initiator would be in a real deployment.
//
// Two modes share one API:
//
//   - Dial gives the legacy v1 initiator: requests serialize on the
//     connection, one in flight at a time (call-and-response).
//   - DialPipelined negotiates the tagged v2 protocol: every method call
//     still blocks its caller, but any number of goroutines may have calls
//     in flight on the SAME connection at once — each gets a tag, the
//     server completes them out of order, and a background reader routes
//     responses back by tag. Queue depth is simply how many goroutines you
//     point at one client.
package client

import (
	"errors"
	"fmt"
	"net"
	"os"
	"sync"
	"time"

	"purity/internal/wire"
)

// DialFunc opens the transport for a connection. net.Dial is the default;
// the chaos injector's Dial plugs in here to put faults on the path.
type DialFunc func(network, addr string) (net.Conn, error)

// Client is a connection to one controller port. Methods are safe for
// concurrent use (legacy mode serializes requests; pipelined mode
// interleaves them).
type Client struct {
	conn net.Conn

	// Legacy (v1) mode: mu serializes whole request/response exchanges.
	mu sync.Mutex

	// Pipelined (v2) mode.
	pipelined bool
	session   uint64 // replay session negotiated at hello (0 = none)
	timeout   time.Duration
	wmu       sync.Mutex // serializes request frame writes
	pmu       sync.Mutex // guards pending, nextTag, readErr
	pending   map[uint32]chan taggedResp
	nextTag   uint32
	readErr   error // set once the reader goroutine dies; fails all calls
}

type taggedResp struct {
	op      byte
	payload []byte
}

// Dial connects with the legacy lock-step protocol.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// helloTimeout bounds the negotiation exchange when the caller gives no
// tighter bound: without one, a connection that eats the hello response
// hangs the dial forever.
const helloTimeout = 10 * time.Second

// DialPipelined connects and negotiates the tagged v2 protocol. If the
// server only speaks v1 the client transparently stays in legacy mode.
func DialPipelined(addr string) (*Client, error) {
	return dialPipelined(addr, net.Dial, 0, false, 0)
}

// DialSession connects pipelined AND negotiates a replay session: session 0
// asks the array to open a fresh one, a nonzero ID resumes an existing
// session (after a reconnect, possibly to the peer controller's port). The
// granted ID is available via Session. timeout bounds the negotiation
// (default 10 s when 0).
func DialSession(addr string, dial DialFunc, session uint64, timeout time.Duration) (*Client, error) {
	return dialPipelined(addr, dial, session, true, timeout)
}

func dialPipelined(addr string, dial DialFunc, session uint64, wantSession bool, timeout time.Duration) (*Client, error) {
	conn, err := dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Client, error) {
		//lint:ignore errdrop best-effort teardown of a connection being abandoned; the negotiation error is the one the caller needs
		conn.Close()
		return nil, err
	}
	if timeout <= 0 {
		timeout = helloTimeout
	}
	//lint:ignore errdrop a conn that can't set deadlines fails the hello exchange below
	conn.SetDeadline(time.Now().Add(timeout))
	if err := wire.WriteFrame(conn, wire.OpHello, wire.EncodeHello(wire.ProtoTagged, session, wantSession)); err != nil {
		return fail(err)
	}
	respOp, resp, err := wire.ReadFrame(conn)
	if err != nil {
		return fail(err)
	}
	if respOp != wire.OpHello {
		return fail(fmt.Errorf("client: hello answered with opcode %d", respOp))
	}
	body, err := wire.ParseResponse(resp)
	if err != nil {
		return fail(err)
	}
	h, err := wire.DecodeHello(body)
	if err != nil {
		return fail(err)
	}
	if wantSession && !h.HasSession {
		return fail(errors.New("client: server did not grant a replay session"))
	}
	//lint:ignore errdrop clearing the hello deadline is best-effort; per-op deadlines take over from here
	conn.SetDeadline(time.Time{})
	c := &Client{conn: conn, session: h.Session}
	if h.Version >= wire.ProtoTagged {
		c.pipelined = true
		c.pending = make(map[uint32]chan taggedResp)
		go c.readLoop()
	}
	return c, nil
}

// Pipelined reports whether the connection negotiated the tagged protocol.
func (c *Client) Pipelined() bool { return c.pipelined }

// Session returns the replay session ID granted at hello (0 if none).
func (c *Client) Session() uint64 { return c.session }

// SetOpTimeout bounds each call. A call that exceeds it fails with an error
// wrapping os.ErrDeadlineExceeded and the connection is condemned — after a
// timeout the request/response stream can no longer be trusted, so the
// whole connection resets (the iSCSI session-reset analogue). Set before
// sharing the client across goroutines.
func (c *Client) SetOpTimeout(d time.Duration) { c.timeout = d }

// Close closes the connection. In pipelined mode any in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop routes tagged responses to their waiting callers. A response
// carrying a tag with no waiter is a protocol violation: the stream can no
// longer be trusted, so the connection fails as a whole.
func (c *Client) readLoop() {
	for {
		// This read blocks indefinitely by design: responses arrive whenever
		// the server finishes, and the per-op timers in call condemn a stuck
		// connection via c.conn.Close(), which unblocks it with an error.
		//lint:ignore connguard per-op timers in call condemn the conn via Close, which unblocks this read
		op, tag, payload, err := wire.ReadTaggedFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[tag]
		if ok {
			delete(c.pending, tag)
		}
		c.pmu.Unlock()
		if !ok {
			c.failAll(fmt.Errorf("client: response for unknown tag %d (op %d)", tag, op))
			//lint:ignore errdrop the stream is untrusted after an unknown tag; failAll already carries the error to every caller
			c.conn.Close()
			return
		}
		ch <- taggedResp{op: op, payload: payload}
	}
}

// failAll fails every pending call and all future ones.
func (c *Client) failAll(err error) {
	if errors.Is(err, net.ErrClosed) {
		err = errors.New("client: connection closed")
	}
	c.pmu.Lock()
	c.readErr = err
	for tag, ch := range c.pending {
		delete(c.pending, tag)
		close(ch)
	}
	c.pmu.Unlock()
}

// call performs one request/response exchange (blocking in both modes; in
// pipelined mode other goroutines' calls proceed concurrently).
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	if !c.pipelined {
		return c.callSync(op, payload)
	}
	c.pmu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		return nil, err
	}
	c.nextTag++
	tag := c.nextTag
	ch := make(chan taggedResp, 1)
	c.pending[tag] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	// Bound the write: a server that stops reading would otherwise wedge
	// every caller behind wmu via TCP backpressure.
	//lint:ignore errdrop a conn that can't set deadlines fails the write below
	c.conn.SetWriteDeadline(time.Now().Add(c.opTimeout()))
	err := wire.WriteTaggedFrame(c.conn, op, tag, payload)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, tag)
		c.pmu.Unlock()
		return nil, err
	}
	opT := c.opTimeout()
	t := time.NewTimer(opT)
	defer t.Stop()
	deadline := t.C
	var r taggedResp
	var ok bool
	select {
	case r, ok = <-ch:
	case <-deadline:
		// The op may or may not have been applied (an ambiguous failure);
		// the tag can no longer be trusted to come back, so the connection
		// resets. An HA caller reconnects and replays idempotently.
		c.pmu.Lock()
		delete(c.pending, tag)
		c.pmu.Unlock()
		//lint:ignore errdrop the timeout is the root cause; this close is the condemnation, best-effort
		c.conn.Close()
		return nil, fmt.Errorf("client: op timed out after %v (tag %d): %w", opT, tag, os.ErrDeadlineExceeded)
	}
	if !ok {
		c.pmu.Lock()
		err := c.readErr
		c.pmu.Unlock()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return nil, err
	}
	if r.op != op {
		return nil, fmt.Errorf("client: response opcode %d for request %d (tag %d)", r.op, op, tag)
	}
	return wire.ParseTaggedResponse(r.payload)
}

// opTimeout returns the per-op deadline budget: the configured timeout, or
// the initiator-style default when none was set — an exchange must never
// be unbounded (§4.3's I/O timeout discipline).
func (c *Client) opTimeout() time.Duration {
	if c.timeout > 0 {
		return c.timeout
	}
	return defaultOpTimeout
}

// defaultOpTimeout bounds an exchange when SetOpTimeout was never called,
// mirroring a SCSI initiator's I/O timeout: generous enough for a loaded
// array, finite so a dead server cannot wedge the caller forever.
const defaultOpTimeout = 30 * time.Second

// callSync is the legacy lock-step exchange.
func (c *Client) callSync(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	//lint:ignore errdrop a conn that can't set deadlines fails the write below
	c.conn.SetDeadline(time.Now().Add(c.opTimeout()))
	if err := wire.WriteFrame(c.conn, op, payload); err != nil {
		return nil, err
	}
	respOp, resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if respOp != op {
		return nil, fmt.Errorf("client: response opcode %d for request %d", respOp, op)
	}
	return wire.ParseResponse(resp)
}

// CreateVolume provisions a volume and returns its ID.
func (c *Client) CreateVolume(name string, sizeBytes int64) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpCreateVolume, e.Str(name).U64(uint64(sizeBytes)).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// OpenVolume resolves a volume name to (id, size).
func (c *Client) OpenVolume(name string) (uint64, int64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpOpenVolume, e.Str(name).B)
	if err != nil {
		return 0, 0, err
	}
	d := wire.Dec{B: resp}
	id, size := d.U64(), d.U64()
	return id, int64(size), d.Err
}

// VolumeInfo is one listing entry.
type VolumeInfo struct {
	ID        uint64
	Name      string
	SizeBytes int64
	Snapshot  bool
}

// ListVolumes returns all volumes and snapshots.
func (c *Client) ListVolumes() ([]VolumeInfo, error) {
	resp, err := c.call(wire.OpListVolumes, nil)
	if err != nil {
		return nil, err
	}
	d := wire.Dec{B: resp}
	n := d.U64()
	out := make([]VolumeInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		v := VolumeInfo{ID: d.U64(), Name: d.Str()}
		v.SizeBytes = int64(d.U64())
		v.Snapshot = d.U64() == 1
		out = append(out, v)
	}
	return out, d.Err
}

// ReadAt reads n bytes from a volume.
func (c *Client) ReadAt(vol uint64, off int64, n int) ([]byte, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpRead, e.U64(vol).U64(uint64(off)).U64(uint64(n)).B)
	if err != nil {
		return nil, err
	}
	d := wire.Dec{B: resp}
	data := d.Bytes()
	if d.Err != nil {
		return nil, d.Err
	}
	return append([]byte(nil), data...), nil
}

// WriteAt writes data to a volume.
func (c *Client) WriteAt(vol uint64, off int64, data []byte) error {
	var e wire.Enc
	_, err := c.call(wire.OpWrite, e.U64(vol).U64(uint64(off)).Bytes(data).B)
	return err
}

// WriteIdem writes data carrying a session-scoped idempotency sequence
// number: resending the same seq after an ambiguous failure returns the
// recorded outcome instead of applying twice. Requires a session
// (DialSession); the server rejects it otherwise.
func (c *Client) WriteIdem(seq, vol uint64, off int64, data []byte) error {
	var e wire.Enc
	_, err := c.call(wire.OpWriteIdem, e.U64(seq).U64(vol).U64(uint64(off)).Bytes(data).B)
	return err
}

// Snapshot snapshots a volume.
func (c *Client) Snapshot(vol uint64, name string) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpSnapshot, e.U64(vol).Str(name).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// Clone clones a snapshot into a new volume.
func (c *Client) Clone(snap uint64, name string) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpClone, e.U64(snap).Str(name).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// Delete removes a volume or snapshot.
func (c *Client) Delete(vol uint64) error {
	var e wire.Enc
	_, err := c.call(wire.OpDelete, e.U64(vol).B)
	return err
}

// Stats returns the server's formatted statistics.
func (c *Client) Stats() (string, error) {
	resp, err := c.call(wire.OpStats, nil)
	if err != nil {
		return "", err
	}
	d := wire.Dec{B: resp}
	return d.Str(), d.Err
}

// Flush checkpoints the array.
func (c *Client) Flush() error {
	_, err := c.call(wire.OpFlush, nil)
	return err
}

// GC runs a garbage-collection cycle and returns its report text.
func (c *Client) GC() (string, error) {
	resp, err := c.call(wire.OpGC, nil)
	if err != nil {
		return "", err
	}
	d := wire.Dec{B: resp}
	return d.Str(), d.Err
}
