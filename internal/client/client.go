// Package client is the Go client for the wire protocol — what an
// application host's initiator would be in a real deployment.
//
// Two modes share one API:
//
//   - Dial gives the legacy v1 initiator: requests serialize on the
//     connection, one in flight at a time (call-and-response).
//   - DialPipelined negotiates the tagged v2 protocol: every method call
//     still blocks its caller, but any number of goroutines may have calls
//     in flight on the SAME connection at once — each gets a tag, the
//     server completes them out of order, and a background reader routes
//     responses back by tag. Queue depth is simply how many goroutines you
//     point at one client.
package client

import (
	"errors"
	"fmt"
	"net"
	"sync"

	"purity/internal/wire"
)

// Client is a connection to one controller port. Methods are safe for
// concurrent use (legacy mode serializes requests; pipelined mode
// interleaves them).
type Client struct {
	conn net.Conn

	// Legacy (v1) mode: mu serializes whole request/response exchanges.
	mu sync.Mutex

	// Pipelined (v2) mode.
	pipelined bool
	wmu       sync.Mutex // serializes request frame writes
	pmu       sync.Mutex // guards pending, nextTag, readErr
	pending   map[uint32]chan taggedResp
	nextTag   uint32
	readErr   error // set once the reader goroutine dies; fails all calls
}

type taggedResp struct {
	op      byte
	payload []byte
}

// Dial connects with the legacy lock-step protocol.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// DialPipelined connects and negotiates the tagged v2 protocol. If the
// server only speaks v1 the client transparently stays in legacy mode.
func DialPipelined(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	fail := func(err error) (*Client, error) {
		//lint:ignore errdrop best-effort teardown of a connection being abandoned; the negotiation error is the one the caller needs
		conn.Close()
		return nil, err
	}
	var e wire.Enc
	if err := wire.WriteFrame(conn, wire.OpHello, e.U64(wire.ProtoTagged).B); err != nil {
		return fail(err)
	}
	respOp, resp, err := wire.ReadFrame(conn)
	if err != nil {
		return fail(err)
	}
	if respOp != wire.OpHello {
		return fail(fmt.Errorf("client: hello answered with opcode %d", respOp))
	}
	body, err := wire.ParseResponse(resp)
	if err != nil {
		return fail(err)
	}
	d := wire.Dec{B: body}
	accepted := d.U64()
	if !d.OK() {
		return fail(d.Err)
	}
	c := &Client{conn: conn}
	if accepted >= wire.ProtoTagged {
		c.pipelined = true
		c.pending = make(map[uint32]chan taggedResp)
		go c.readLoop()
	}
	return c, nil
}

// Pipelined reports whether the connection negotiated the tagged protocol.
func (c *Client) Pipelined() bool { return c.pipelined }

// Close closes the connection. In pipelined mode any in-flight calls fail.
func (c *Client) Close() error { return c.conn.Close() }

// readLoop routes tagged responses to their waiting callers. A response
// carrying a tag with no waiter is a protocol violation: the stream can no
// longer be trusted, so the connection fails as a whole.
func (c *Client) readLoop() {
	for {
		op, tag, payload, err := wire.ReadTaggedFrame(c.conn)
		if err != nil {
			c.failAll(err)
			return
		}
		c.pmu.Lock()
		ch, ok := c.pending[tag]
		if ok {
			delete(c.pending, tag)
		}
		c.pmu.Unlock()
		if !ok {
			c.failAll(fmt.Errorf("client: response for unknown tag %d (op %d)", tag, op))
			//lint:ignore errdrop the stream is untrusted after an unknown tag; failAll already carries the error to every caller
			c.conn.Close()
			return
		}
		ch <- taggedResp{op: op, payload: payload}
	}
}

// failAll fails every pending call and all future ones.
func (c *Client) failAll(err error) {
	if errors.Is(err, net.ErrClosed) {
		err = errors.New("client: connection closed")
	}
	c.pmu.Lock()
	c.readErr = err
	for tag, ch := range c.pending {
		delete(c.pending, tag)
		close(ch)
	}
	c.pmu.Unlock()
}

// call performs one request/response exchange (blocking in both modes; in
// pipelined mode other goroutines' calls proceed concurrently).
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	if !c.pipelined {
		return c.callSync(op, payload)
	}
	c.pmu.Lock()
	if c.readErr != nil {
		err := c.readErr
		c.pmu.Unlock()
		return nil, err
	}
	c.nextTag++
	tag := c.nextTag
	ch := make(chan taggedResp, 1)
	c.pending[tag] = ch
	c.pmu.Unlock()

	c.wmu.Lock()
	err := wire.WriteTaggedFrame(c.conn, op, tag, payload)
	c.wmu.Unlock()
	if err != nil {
		c.pmu.Lock()
		delete(c.pending, tag)
		c.pmu.Unlock()
		return nil, err
	}
	r, ok := <-ch
	if !ok {
		c.pmu.Lock()
		err := c.readErr
		c.pmu.Unlock()
		if err == nil {
			err = errors.New("client: connection closed")
		}
		return nil, err
	}
	if r.op != op {
		return nil, fmt.Errorf("client: response opcode %d for request %d (tag %d)", r.op, op, tag)
	}
	return wire.ParseTaggedResponse(r.payload)
}

// callSync is the legacy lock-step exchange.
func (c *Client) callSync(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.conn, op, payload); err != nil {
		return nil, err
	}
	respOp, resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if respOp != op {
		return nil, fmt.Errorf("client: response opcode %d for request %d", respOp, op)
	}
	return wire.ParseResponse(resp)
}

// CreateVolume provisions a volume and returns its ID.
func (c *Client) CreateVolume(name string, sizeBytes int64) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpCreateVolume, e.Str(name).U64(uint64(sizeBytes)).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// OpenVolume resolves a volume name to (id, size).
func (c *Client) OpenVolume(name string) (uint64, int64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpOpenVolume, e.Str(name).B)
	if err != nil {
		return 0, 0, err
	}
	d := wire.Dec{B: resp}
	id, size := d.U64(), d.U64()
	return id, int64(size), d.Err
}

// VolumeInfo is one listing entry.
type VolumeInfo struct {
	ID        uint64
	Name      string
	SizeBytes int64
	Snapshot  bool
}

// ListVolumes returns all volumes and snapshots.
func (c *Client) ListVolumes() ([]VolumeInfo, error) {
	resp, err := c.call(wire.OpListVolumes, nil)
	if err != nil {
		return nil, err
	}
	d := wire.Dec{B: resp}
	n := d.U64()
	out := make([]VolumeInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		v := VolumeInfo{ID: d.U64(), Name: d.Str()}
		v.SizeBytes = int64(d.U64())
		v.Snapshot = d.U64() == 1
		out = append(out, v)
	}
	return out, d.Err
}

// ReadAt reads n bytes from a volume.
func (c *Client) ReadAt(vol uint64, off int64, n int) ([]byte, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpRead, e.U64(vol).U64(uint64(off)).U64(uint64(n)).B)
	if err != nil {
		return nil, err
	}
	d := wire.Dec{B: resp}
	data := d.Bytes()
	if d.Err != nil {
		return nil, d.Err
	}
	return append([]byte(nil), data...), nil
}

// WriteAt writes data to a volume.
func (c *Client) WriteAt(vol uint64, off int64, data []byte) error {
	var e wire.Enc
	_, err := c.call(wire.OpWrite, e.U64(vol).U64(uint64(off)).Bytes(data).B)
	return err
}

// Snapshot snapshots a volume.
func (c *Client) Snapshot(vol uint64, name string) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpSnapshot, e.U64(vol).Str(name).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// Clone clones a snapshot into a new volume.
func (c *Client) Clone(snap uint64, name string) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpClone, e.U64(snap).Str(name).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// Delete removes a volume or snapshot.
func (c *Client) Delete(vol uint64) error {
	var e wire.Enc
	_, err := c.call(wire.OpDelete, e.U64(vol).B)
	return err
}

// Stats returns the server's formatted statistics.
func (c *Client) Stats() (string, error) {
	resp, err := c.call(wire.OpStats, nil)
	if err != nil {
		return "", err
	}
	d := wire.Dec{B: resp}
	return d.Str(), d.Err
}

// Flush checkpoints the array.
func (c *Client) Flush() error {
	_, err := c.call(wire.OpFlush, nil)
	return err
}

// GC runs a garbage-collection cycle and returns its report text.
func (c *Client) GC() (string, error) {
	resp, err := c.call(wire.OpGC, nil)
	if err != nil {
		return "", err
	}
	d := wire.Dec{B: resp}
	return d.Str(), d.Err
}
