// Package client is the Go client for the wire protocol — what an
// application host's initiator would be in a real deployment.
package client

import (
	"fmt"
	"net"
	"sync"

	"purity/internal/wire"
)

// Client is a connection to one controller port. Methods are safe for
// concurrent use (requests serialize on the connection).
type Client struct {
	mu   sync.Mutex
	conn net.Conn
}

// Dial connects to a server.
func Dial(addr string) (*Client, error) {
	conn, err := net.Dial("tcp", addr)
	if err != nil {
		return nil, err
	}
	return &Client{conn: conn}, nil
}

// Close closes the connection.
func (c *Client) Close() error { return c.conn.Close() }

// call performs one request/response exchange.
func (c *Client) call(op byte, payload []byte) ([]byte, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if err := wire.WriteFrame(c.conn, op, payload); err != nil {
		return nil, err
	}
	respOp, resp, err := wire.ReadFrame(c.conn)
	if err != nil {
		return nil, err
	}
	if respOp != op {
		return nil, fmt.Errorf("client: response opcode %d for request %d", respOp, op)
	}
	return wire.ParseResponse(resp)
}

// CreateVolume provisions a volume and returns its ID.
func (c *Client) CreateVolume(name string, sizeBytes int64) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpCreateVolume, e.Str(name).U64(uint64(sizeBytes)).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// OpenVolume resolves a volume name to (id, size).
func (c *Client) OpenVolume(name string) (uint64, int64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpOpenVolume, e.Str(name).B)
	if err != nil {
		return 0, 0, err
	}
	d := wire.Dec{B: resp}
	id, size := d.U64(), d.U64()
	return id, int64(size), d.Err
}

// VolumeInfo is one listing entry.
type VolumeInfo struct {
	ID        uint64
	Name      string
	SizeBytes int64
	Snapshot  bool
}

// ListVolumes returns all volumes and snapshots.
func (c *Client) ListVolumes() ([]VolumeInfo, error) {
	resp, err := c.call(wire.OpListVolumes, nil)
	if err != nil {
		return nil, err
	}
	d := wire.Dec{B: resp}
	n := d.U64()
	out := make([]VolumeInfo, 0, n)
	for i := uint64(0); i < n; i++ {
		v := VolumeInfo{ID: d.U64(), Name: d.Str()}
		v.SizeBytes = int64(d.U64())
		v.Snapshot = d.U64() == 1
		out = append(out, v)
	}
	return out, d.Err
}

// ReadAt reads n bytes from a volume.
func (c *Client) ReadAt(vol uint64, off int64, n int) ([]byte, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpRead, e.U64(vol).U64(uint64(off)).U64(uint64(n)).B)
	if err != nil {
		return nil, err
	}
	d := wire.Dec{B: resp}
	data := d.Bytes()
	if d.Err != nil {
		return nil, d.Err
	}
	return append([]byte(nil), data...), nil
}

// WriteAt writes data to a volume.
func (c *Client) WriteAt(vol uint64, off int64, data []byte) error {
	var e wire.Enc
	_, err := c.call(wire.OpWrite, e.U64(vol).U64(uint64(off)).Bytes(data).B)
	return err
}

// Snapshot snapshots a volume.
func (c *Client) Snapshot(vol uint64, name string) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpSnapshot, e.U64(vol).Str(name).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// Clone clones a snapshot into a new volume.
func (c *Client) Clone(snap uint64, name string) (uint64, error) {
	var e wire.Enc
	resp, err := c.call(wire.OpClone, e.U64(snap).Str(name).B)
	if err != nil {
		return 0, err
	}
	d := wire.Dec{B: resp}
	return d.U64(), d.Err
}

// Delete removes a volume or snapshot.
func (c *Client) Delete(vol uint64) error {
	var e wire.Enc
	_, err := c.call(wire.OpDelete, e.U64(vol).B)
	return err
}

// Stats returns the server's formatted statistics.
func (c *Client) Stats() (string, error) {
	resp, err := c.call(wire.OpStats, nil)
	if err != nil {
		return "", err
	}
	d := wire.Dec{B: resp}
	return d.Str(), d.Err
}

// Flush checkpoints the array.
func (c *Client) Flush() error {
	_, err := c.call(wire.OpFlush, nil)
	return err
}

// GC runs a garbage-collection cycle and returns its report text.
func (c *Client) GC() (string, error) {
	resp, err := c.call(wire.OpGC, nil)
	if err != nil {
		return "", err
	}
	d := wire.Dec{B: resp}
	return d.Str(), d.Err
}
