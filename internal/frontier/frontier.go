// Package frontier implements Purity's boot region and frontier sets
// (§4.3, Figure 5 of the paper). The main region of every drive holds
// segments; the boot region is a tiny reserved area holding checkpoint
// records: the locations of the metadata relations (patch catalogs),
// allocator state, and — critically — the frontier set, the list of AUs
// the system has committed to allocate from next.
//
// Because segments are only ever opened on frontier AUs, recovery needs to
// scan just those AUs for log records written since the checkpoint, instead
// of every AU in the array. The paper reports this cut startup scans from
// 12 s to 0.1 s; experiment F5 reproduces the shape.
package frontier

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"

	"purity/internal/crashpoint"
	"purity/internal/layout"
	"purity/internal/sim"
	"purity/internal/ssd"
	"purity/internal/tuple"
)

// Checkpoint is one boot-region record: everything recovery needs besides
// the frontier scan and the NVRAM replay.
type Checkpoint struct {
	Epoch        uint64
	SeqWatermark tuple.Seq // facts ≤ this are in patches below
	NextMedium   uint64
	NextVolume   uint64
	NextSegment  uint64

	Frontier    []layout.AU // AUs new segments will use next
	Speculative []layout.AU // approximation of the following frontier

	Segments []layout.SegmentInfo // live segments at checkpoint time
	Patches  [][]byte             // pyramid.MarshalPatch blobs, all relations
}

const ckptMagic = 0x50434b50 // "PKCP"

// Marshal serializes the checkpoint with a CRC header.
func Marshal(c *Checkpoint) []byte {
	var b []byte
	b = binary.AppendUvarint(b, c.Epoch)
	b = binary.AppendUvarint(b, uint64(c.SeqWatermark))
	b = binary.AppendUvarint(b, c.NextMedium)
	b = binary.AppendUvarint(b, c.NextVolume)
	b = binary.AppendUvarint(b, c.NextSegment)
	appendAUs := func(aus []layout.AU) {
		b = binary.AppendUvarint(b, uint64(len(aus)))
		for _, au := range aus {
			b = binary.AppendUvarint(b, uint64(au.Drive))
			b = binary.AppendUvarint(b, uint64(au.Index))
		}
	}
	appendAUs(c.Frontier)
	appendAUs(c.Speculative)
	b = binary.AppendUvarint(b, uint64(len(c.Segments)))
	for _, s := range c.Segments {
		b = binary.AppendUvarint(b, uint64(s.ID))
		b = binary.AppendUvarint(b, uint64(s.Stripes))
		sealed := uint64(0)
		if s.Sealed {
			sealed = 1
		}
		b = binary.AppendUvarint(b, sealed)
		b = binary.AppendUvarint(b, uint64(s.SeqMin))
		b = binary.AppendUvarint(b, uint64(s.SeqMax))
		b = binary.AppendUvarint(b, uint64(len(s.AUs)))
		for _, au := range s.AUs {
			b = binary.AppendUvarint(b, uint64(au.Drive))
			b = binary.AppendUvarint(b, uint64(au.Index))
		}
	}
	b = binary.AppendUvarint(b, uint64(len(c.Patches)))
	for _, p := range c.Patches {
		b = binary.AppendUvarint(b, uint64(len(p)))
		b = append(b, p...)
	}

	out := make([]byte, 0, len(b)+12)
	out = binary.LittleEndian.AppendUint32(out, ckptMagic)
	out = binary.LittleEndian.AppendUint32(out, uint32(len(b)))
	out = binary.LittleEndian.AppendUint32(out, crc32.ChecksumIEEE(b))
	return append(out, b...)
}

// ErrNoCheckpoint marks an empty or invalid boot slot.
var ErrNoCheckpoint = errors.New("frontier: no valid checkpoint")

// Unmarshal parses a boot-region slot.
func Unmarshal(raw []byte) (*Checkpoint, error) {
	if len(raw) < 12 || binary.LittleEndian.Uint32(raw) != ckptMagic {
		return nil, ErrNoCheckpoint
	}
	n := int(binary.LittleEndian.Uint32(raw[4:]))
	sum := binary.LittleEndian.Uint32(raw[8:])
	if 12+n > len(raw) {
		return nil, ErrNoCheckpoint
	}
	b := raw[12 : 12+n]
	if crc32.ChecksumIEEE(b) != sum {
		return nil, ErrNoCheckpoint
	}
	pos := 0
	next := func() (uint64, error) {
		v, n := binary.Uvarint(b[pos:])
		if n <= 0 {
			return 0, ErrNoCheckpoint
		}
		pos += n
		return v, nil
	}
	c := &Checkpoint{}
	var v uint64
	var err error
	if c.Epoch, err = next(); err != nil {
		return nil, err
	}
	if v, err = next(); err != nil {
		return nil, err
	}
	c.SeqWatermark = tuple.Seq(v)
	if c.NextMedium, err = next(); err != nil {
		return nil, err
	}
	if c.NextVolume, err = next(); err != nil {
		return nil, err
	}
	if c.NextSegment, err = next(); err != nil {
		return nil, err
	}
	readAUs := func() ([]layout.AU, error) {
		count, err := next()
		if err != nil || count > 1<<20 {
			return nil, ErrNoCheckpoint
		}
		aus := make([]layout.AU, 0, count)
		for i := uint64(0); i < count; i++ {
			d, err := next()
			if err != nil {
				return nil, err
			}
			idx, err := next()
			if err != nil {
				return nil, err
			}
			aus = append(aus, layout.AU{Drive: int(d), Index: int64(idx)})
		}
		return aus, nil
	}
	if c.Frontier, err = readAUs(); err != nil {
		return nil, err
	}
	if c.Speculative, err = readAUs(); err != nil {
		return nil, err
	}
	segCount, err := next()
	if err != nil || segCount > 1<<24 {
		return nil, ErrNoCheckpoint
	}
	for i := uint64(0); i < segCount; i++ {
		var s layout.SegmentInfo
		if v, err = next(); err != nil {
			return nil, err
		}
		s.ID = layout.SegmentID(v)
		if v, err = next(); err != nil {
			return nil, err
		}
		s.Stripes = int(v)
		if v, err = next(); err != nil {
			return nil, err
		}
		s.Sealed = v == 1
		if v, err = next(); err != nil {
			return nil, err
		}
		s.SeqMin = tuple.Seq(v)
		if v, err = next(); err != nil {
			return nil, err
		}
		s.SeqMax = tuple.Seq(v)
		if s.AUs, err = readAUs(); err != nil {
			return nil, err
		}
		c.Segments = append(c.Segments, s)
	}
	patchCount, err := next()
	if err != nil || patchCount > 1<<24 {
		return nil, ErrNoCheckpoint
	}
	for i := uint64(0); i < patchCount; i++ {
		if v, err = next(); err != nil {
			return nil, err
		}
		if pos+int(v) > len(b) {
			return nil, ErrNoCheckpoint
		}
		c.Patches = append(c.Patches, append([]byte(nil), b[pos:pos+int(v)]...))
		pos += int(v)
	}
	return c, nil
}

// BootRegion reads and writes checkpoint records in the reserved boot AUs.
// Records replicate across the first replicas drives, in two alternating
// slots, so a torn write or a drive failure never loses the boot chain.
type BootRegion struct {
	cfg      layout.Config
	drives   []*ssd.Device
	replicas int
	crash    *crashpoint.Registry
}

// SetCrash installs a crash-point registry (nil disables injection).
func (br *BootRegion) SetCrash(r *crashpoint.Registry) { br.crash = r }

// NewBootRegion returns a boot region over the shelf's drives.
func NewBootRegion(cfg layout.Config, drives []*ssd.Device) *BootRegion {
	replicas := 3
	if replicas > len(drives) {
		replicas = len(drives)
	}
	return &BootRegion{cfg: cfg, drives: drives, replicas: replicas}
}

// slotSize is half the boot AU: two alternating slots per drive.
func (br *BootRegion) slotSize() int64 { return br.cfg.AUSize() / 2 }

// Write persists the checkpoint to slot (epoch % 2) of every replica drive.
// At least one replica must succeed.
func (br *BootRegion) Write(at sim.Time, c *Checkpoint) (sim.Time, error) {
	raw := Marshal(c)
	if int64(len(raw)) > br.slotSize() {
		return at, fmt.Errorf("frontier: checkpoint %d bytes exceeds boot slot %d", len(raw), br.slotSize())
	}
	off := int64(c.Epoch%2) * br.slotSize()
	done := at
	succeeded := 0
	// A crash before any replica write loses this checkpoint entirely;
	// recovery falls back to the previous epoch's slot.
	br.crash.Hit("frontier.boot.begin")
	for i := 0; i < br.replicas; i++ {
		d, err := br.drives[i].WriteAt(at, raw, off)
		if err != nil {
			continue
		}
		succeeded++
		if d > done {
			done = d
		}
		// A crash here leaves the new checkpoint on a strict subset of the
		// replicas; ReadLatest still finds it by epoch.
		br.crash.Hit("frontier.boot.replica")
	}
	if succeeded == 0 {
		return done, errors.New("frontier: no boot replica written")
	}
	return done, nil
}

// ReadLatest scans every replica's slots and returns the valid checkpoint
// with the highest epoch, or ErrNoCheckpoint for a factory-fresh shelf.
func (br *BootRegion) ReadLatest(at sim.Time) (*Checkpoint, sim.Time, error) {
	var best *Checkpoint
	done := at
	buf := make([]byte, br.slotSize())
	for i := 0; i < br.replicas; i++ {
		for slot := int64(0); slot < 2; slot++ {
			d, err := br.drives[i].ReadAt(at, buf, slot*br.slotSize())
			if d > done {
				done = d
			}
			if err != nil {
				continue
			}
			c, err := Unmarshal(buf)
			if err != nil {
				continue
			}
			if best == nil || c.Epoch > best.Epoch {
				best = c
			}
		}
	}
	if best == nil {
		return nil, done, ErrNoCheckpoint
	}
	return best, done, nil
}
