package frontier

import (
	"bytes"
	"testing"

	"purity/internal/layout"
	"purity/internal/ssd"
)

func sampleCheckpoint() *Checkpoint {
	return &Checkpoint{
		Epoch:        7,
		SeqWatermark: 12345,
		NextMedium:   3,
		NextVolume:   4,
		NextSegment:  5,
		Frontier:     []layout.AU{{Drive: 0, Index: 2}, {Drive: 1, Index: 3}},
		Speculative:  []layout.AU{{Drive: 2, Index: 9}},
		Segments: []layout.SegmentInfo{
			{ID: 1, AUs: []layout.AU{{Drive: 0, Index: 1}, {Drive: 1, Index: 1}, {Drive: 2, Index: 1}, {Drive: 3, Index: 1}, {Drive: 4, Index: 1}}, Stripes: 4, Sealed: true, SeqMin: 1, SeqMax: 99},
			{ID: 2, AUs: []layout.AU{{Drive: 1, Index: 2}, {Drive: 2, Index: 2}, {Drive: 3, Index: 2}, {Drive: 4, Index: 2}, {Drive: 5, Index: 2}}, Stripes: 1, Sealed: false, SeqMin: 100, SeqMax: 150},
		},
		Patches: [][]byte{[]byte("patch-blob-1"), []byte("patch-blob-two")},
	}
}

func TestCheckpointRoundTrip(t *testing.T) {
	in := sampleCheckpoint()
	raw := Marshal(in)
	out, err := Unmarshal(raw)
	if err != nil {
		t.Fatal(err)
	}
	if out.Epoch != in.Epoch || out.SeqWatermark != in.SeqWatermark ||
		out.NextMedium != in.NextMedium || out.NextVolume != in.NextVolume || out.NextSegment != in.NextSegment {
		t.Fatalf("header mismatch: %+v", out)
	}
	if len(out.Frontier) != 2 || out.Frontier[1] != (layout.AU{Drive: 1, Index: 3}) {
		t.Fatalf("frontier = %+v", out.Frontier)
	}
	if len(out.Speculative) != 1 {
		t.Fatalf("speculative = %+v", out.Speculative)
	}
	if len(out.Segments) != 2 {
		t.Fatalf("segments = %+v", out.Segments)
	}
	s := out.Segments[0]
	if s.ID != 1 || !s.Sealed || s.Stripes != 4 || s.SeqMax != 99 || len(s.AUs) != 5 {
		t.Fatalf("segment 0 = %+v", s)
	}
	if out.Segments[1].Sealed {
		t.Fatal("unsealed flag lost")
	}
	if len(out.Patches) != 2 || !bytes.Equal(out.Patches[1], []byte("patch-blob-two")) {
		t.Fatalf("patches = %q", out.Patches)
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	raw := Marshal(sampleCheckpoint())
	for _, i := range []int{0, 4, 8, 12, len(raw) / 2, len(raw) - 1} {
		bad := bytes.Clone(raw)
		bad[i] ^= 0xff
		if _, err := Unmarshal(bad); err == nil {
			t.Errorf("corrupt byte %d accepted", i)
		}
	}
	if _, err := Unmarshal(nil); err != ErrNoCheckpoint {
		t.Fatalf("nil: %v", err)
	}
	if _, err := Unmarshal(raw[:8]); err != ErrNoCheckpoint {
		t.Fatalf("short: %v", err)
	}
}

func newDrives(t *testing.T, n int) []*ssd.Device {
	t.Helper()
	cfg := layout.TestConfig()
	dcfg := ssd.DefaultConfig()
	dcfg.EraseBlockSize = int(cfg.AUSize())
	dcfg.Capacity = 8 * cfg.AUSize()
	drives := make([]*ssd.Device, n)
	for i := range drives {
		var err error
		drives[i], err = ssd.New("d", dcfg)
		if err != nil {
			t.Fatal(err)
		}
	}
	return drives
}

func TestBootRegionWriteRead(t *testing.T) {
	cfg := layout.TestConfig()
	drives := newDrives(t, 6)
	br := NewBootRegion(cfg, drives)

	// Fresh shelf: no checkpoint.
	if _, _, err := br.ReadLatest(0); err != ErrNoCheckpoint {
		t.Fatalf("fresh shelf: %v", err)
	}

	c1 := sampleCheckpoint()
	c1.Epoch = 1
	if _, err := br.Write(0, c1); err != nil {
		t.Fatal(err)
	}
	got, _, err := br.ReadLatest(0)
	if err != nil || got.Epoch != 1 {
		t.Fatalf("read = %+v, %v", got, err)
	}

	// A newer epoch in the other slot wins.
	c2 := sampleCheckpoint()
	c2.Epoch = 2
	c2.NextVolume = 99
	if _, err := br.Write(0, c2); err != nil {
		t.Fatal(err)
	}
	got, _, err = br.ReadLatest(0)
	if err != nil || got.Epoch != 2 || got.NextVolume != 99 {
		t.Fatalf("read = %+v, %v", got, err)
	}
	// Corrupting two replicas' boot AUs still leaves the third readable.
	drives[0].CorruptBlock(0)
	drives[1].CorruptBlock(0)
	got, _, err = br.ReadLatest(0)
	if err != nil || got.Epoch != 2 {
		t.Fatalf("surviving replica read = %+v, %v", got, err)
	}
}

func TestBootRegionSurvivesDriveFailures(t *testing.T) {
	cfg := layout.TestConfig()
	drives := newDrives(t, 6)
	br := NewBootRegion(cfg, drives)
	c := sampleCheckpoint()
	if _, err := br.Write(0, c); err != nil {
		t.Fatal(err)
	}
	// Two of the three replicas die; the third still serves.
	drives[0].Fail()
	drives[1].Fail()
	got, _, err := br.ReadLatest(0)
	if err != nil || got.Epoch != c.Epoch {
		t.Fatalf("read with failed replicas: %+v, %v", got, err)
	}
	// Writes also tolerate replica loss.
	c.Epoch++
	if _, err := br.Write(0, c); err != nil {
		t.Fatal(err)
	}
	// All replicas down: write fails loudly.
	drives[2].Fail()
	if _, err := br.Write(0, c); err == nil {
		t.Fatal("write with no live replicas succeeded")
	}
}

func TestBootRegionTooLarge(t *testing.T) {
	cfg := layout.TestConfig()
	drives := newDrives(t, 3)
	br := NewBootRegion(cfg, drives)
	c := sampleCheckpoint()
	c.Patches = [][]byte{make([]byte, int(cfg.AUSize()))}
	if _, err := br.Write(0, c); err == nil {
		t.Fatal("oversized checkpoint accepted")
	}
}
