module purity

go 1.24
