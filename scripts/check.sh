#!/bin/sh
# check.sh — the repo's one-command gate. Runs what CI would: vet, build,
# the full test suite, and a short race pass over the packages that do real
# concurrency (the parallel write pipeline, its core entry points, and the
# TCP server's per-connection goroutines).
#
# Usage: scripts/check.sh            from the repo root
set -eu

cd "$(dirname "$0")/.."

echo "== go vet"
go vet ./...

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== crash-consistency sweep (short, incl. rebuild fault points; full sweep: purity-bench -experiment CS)"
go test -short -run 'TestCrashSweep|TestTornTailRecovery|TestCorruptTailRecovery|TestCrashDuringRecovery' ./internal/core/

echo "== drive-failure lifecycle (scrub repair + online rebuild)"
go test -run 'TestScrubRepairsAllInjectedCorruption|TestScrubStepPacedWalkerCoversEverything|TestRebuildRestoresRedundancyAndBootRegion|TestRebuildSurvivesSecondFailure|TestOpenAtWithOneNVRAMFailed' ./internal/core/

echo "== go test -race (concurrency-bearing packages)"
go test -race -short ./internal/pipeline/ ./internal/server/ ./internal/dedup/
go test -race -short -run 'TestConcurrentWriters|TestConcurrentScrubRebuildForeground' ./internal/core/

echo "ok: all checks passed"
