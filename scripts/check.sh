#!/bin/sh
# check.sh — the repo's one-command gate. Runs what CI would: formatting,
# vet, the repo's own invariant checker (purity-lint), build, the full test
# suite, and a short race pass over the packages that do real concurrency
# (the parallel write pipeline, its core entry points, the TCP server's
# per-connection goroutines, and the allocator/shelf locking).
#
# Usage: scripts/check.sh            from the repo root
set -eu

cd "$(dirname "$0")/.."

echo "== gofmt"
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
	echo "gofmt: needs formatting:" >&2
	echo "$unformatted" >&2
	exit 1
fi

echo "== go vet"
go vet ./...

echo "== purity-lint (repo invariants: lockcheck lockflow taintverify seqmono factmut crashpointcheck errdrop nodebug connguard releasepair goroutinelife lockorder commitorder)"
# The full 13-rule pass (including the interprocedural summary layer) must
# stay interactive: LINT_BUDGET seconds wall-clock, asserted below so a
# regression in the summary fixpoint fails loudly instead of slowly.
# LINT_FINDINGS, when set, receives the machine-readable findings (-json)
# for CI to archive as a build artifact; LINT_GRAPHS, when set, names a
# directory that receives the inferred lock-order and call graphs as DOT,
# archived next to the findings (DESIGN.md's lock hierarchy is this
# output). LINT_RULES, when set, restricts the pass to a comma-separated
# subset — CI uses it to run the syntactic and interprocedural shards in
# parallel.
LINT_BUDGET="${LINT_BUDGET:-60}"
lintdir=$(mktemp -d)
trap 'rm -rf "$lintdir"' EXIT
go build -o "$lintdir/purity-lint" ./cmd/purity-lint
lint_start=$(date +%s)
if [ -n "${LINT_FINDINGS:-}" ]; then
	lint_status=0
	"$lintdir/purity-lint" ${LINT_RULES:+-rules "$LINT_RULES"} -json ./... > "$LINT_FINDINGS" || lint_status=$?
	if [ "$lint_status" -ne 0 ]; then
		# Mirror the findings to stderr so the failure is readable in the log.
		cat "$LINT_FINDINGS" >&2
		exit "$lint_status"
	fi
else
	"$lintdir/purity-lint" ${LINT_RULES:+-rules "$LINT_RULES"} ./...
fi
if [ -n "${LINT_GRAPHS:-}" ]; then
	mkdir -p "$LINT_GRAPHS"
	"$lintdir/purity-lint" -graph lock ./... > "$LINT_GRAPHS/lockorder.dot"
	"$lintdir/purity-lint" -graph calls ./... > "$LINT_GRAPHS/callgraph.dot"
fi
lint_elapsed=$(( $(date +%s) - lint_start ))
echo "purity-lint: clean in ${lint_elapsed}s (budget ${LINT_BUDGET}s)"
if [ "$lint_elapsed" -gt "$LINT_BUDGET" ]; then
	echo "purity-lint: wall clock ${lint_elapsed}s exceeds the ${LINT_BUDGET}s budget" >&2
	exit 1
fi

echo "== go build"
go build ./...

echo "== go test"
go test ./...

echo "== crash-consistency sweep (short, incl. rebuild fault points; full sweep: purity-bench -experiment CS)"
go test -short -run 'TestCrashSweep|TestTornTailRecovery|TestCorruptTailRecovery|TestCrashDuringRecovery' ./internal/core/

echo "== drive-failure lifecycle (scrub repair + online rebuild)"
go test -run 'TestScrubRepairsAllInjectedCorruption|TestScrubStepPacedWalkerCoversEverything|TestRebuildRestoresRedundancyAndBootRegion|TestRebuildSurvivesSecondFailure|TestOpenAtWithOneNVRAMFailed' ./internal/core/

echo "== go test -race (concurrency-bearing packages)"
go test -race -short ./internal/pipeline/ ./internal/server/ ./internal/dedup/ ./internal/layout/ ./internal/shelf/
go test -race -short -run 'TestConcurrentWriters|TestConcurrentScrubRebuildForeground' ./internal/core/

echo "== sharded commit lanes (-race multi-lane writers + crash window)"
go test -race -short -run 'TestLane' ./internal/core/

echo "== pipelined front end (-race: out-of-order completion, 64 in-flight on one conn, SLO scrub deferral)"
go test -race -run 'TestPipelined|TestOutOfOrderCompletion|TestDuplicateTagKillsConnection|TestAdmissionWindowBackpressure|TestWireHealthCounters|TestServeSurvivesTransientAcceptErrors' ./internal/server/
go test -run 'TestScrubDefersUnderSLOPressure|TestScrubRunsWithSLODisabled' ./internal/core/

echo "== E13 smoke (2-lane scaling run; output not committed — see .gitignore)"
go run ./cmd/purity-bench -experiment E13 -quick > /dev/null

echo "== E14 smoke (pipelined vs sync queue-depth sweep over loopback TCP)"
go run ./cmd/purity-bench -experiment E14 -quick > /dev/null

echo "== HA (-race: chaos injector, session exactly-once, client reconnect/replay, server drain + failover)"
go test -race ./internal/chaos/ ./internal/controller/
go test -race -run 'TestHA' ./internal/client/
go test -race -run 'TestGracefulDrain|TestWriterDeadline|TestIdleTimeout|TestAcceptBackoffResets|TestSessionIdempotentWriteOverWire|TestHeartbeatFailover' ./internal/server/

echo "== E15 smoke (kill the primary mid-workload under chaos; zero loss, zero dup, gap << 30s)"
go run ./cmd/purity-bench -experiment E15 -quick > /dev/null

echo "ok: all checks passed"
