// Quickstart: create an array, provision a thin volume, write and read,
// snapshot, clone, and look at the data-reduction counters.
package main

import (
	"bytes"
	"fmt"
	"log"

	"purity"
)

func main() {
	// An 11-drive array, the paper's smallest shelf. All storage is
	// simulated in RAM; all timings are on a virtual clock.
	arr, err := purity.New(purity.WithDrives(11), purity.WithDriveCapacity(128<<20))
	if err != nil {
		log.Fatal(err)
	}

	// Volumes are thin-provisioned: creating a 1 GiB volume consumes no
	// flash until data arrives.
	vol, err := arr.CreateVolume("quickstart", 1<<30)
	if err != nil {
		log.Fatal(err)
	}

	// Block I/O is sector aligned (512 B), like iSCSI.
	page := bytes.Repeat([]byte("hello, purity! "), 1024)[:8192]
	if err := vol.WriteAt(page, 0); err != nil {
		log.Fatal(err)
	}
	got, err := vol.ReadAt(0, 8192)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("read back %d bytes, intact=%v\n", len(got), bytes.Equal(got, page))

	// Unwritten space reads as zeros and costs nothing.
	zeros, _ := vol.ReadAt(512<<20, 4096)
	fmt.Printf("unwritten space reads zeros: %v\n", bytes.Equal(zeros, make([]byte, 4096)))

	// Snapshots freeze the volume's medium in O(1); clones layer a new
	// writable medium on top (§3.4 of the paper).
	snap, err := vol.Snapshot("quickstart.v1")
	if err != nil {
		log.Fatal(err)
	}
	clone, err := snap.Clone("quickstart-dev")
	if err != nil {
		log.Fatal(err)
	}
	if err := clone.WriteAt(make([]byte, 4096), 0); err != nil {
		log.Fatal(err)
	}
	orig, _ := snap.ReadAt(0, 4096)
	fmt.Printf("snapshot unchanged under clone writes: %v\n", bytes.Equal(orig, page[:4096]))

	// Inline compression already shrank our very repetitive page.
	st := arr.Stats()
	fmt.Printf("data reduction so far: %.1fx (%d logical bytes -> %d on flash)\n",
		st.ReductionRatio, st.Reduction.LogicalBytes, st.Reduction.PhysicalBytes)
	fmt.Printf("write latency: %s\n", st.WriteLatency.Summary())
	fmt.Printf("simulated time elapsed: %v\n", arr.Elapsed())
}
