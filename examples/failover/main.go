// Failover: the paper's pull-a-drive / pull-a-controller evaluation (§1,
// §4.3). Two drives die mid-workload with service intact; then the primary
// controller dies and the secondary recovers from the shared shelf inside
// the 30-second client timeout.
package main

import (
	"bytes"
	"fmt"
	"log"

	"purity/internal/controller"
	"purity/internal/core"
	"purity/internal/sim"
	"purity/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Shelf.Drives = 11
	cfg.Shelf.DriveConfig.Capacity = 128 << 20
	pair, err := controller.NewPair(controller.DefaultConfig(), cfg)
	if err != nil {
		log.Fatal(err)
	}
	arr := pair.Array()

	vol, now, err := arr.CreateVolume(0, "ha-demo", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	const dataBytes = 48 << 20
	now, err = workload.Prefill(arr, vol, dataBytes, 32<<10, workload.ClassDatabase, 7, now)
	if err != nil {
		log.Fatal(err)
	}
	if now, err = arr.FlushAll(now); err != nil {
		log.Fatal(err)
	}

	// Reference copy of one region for integrity checks.
	want, now2, err := arr.ReadAt(now, vol, 1<<20, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	now = now2

	// Pull two drives mid-flight, as the paper invites evaluators to do.
	pair.WarmSecondary()
	if err := arr.Shelf().PullDrive(3); err != nil {
		log.Fatal(err)
	}
	if err := arr.Shelf().PullDrive(8); err != nil {
		log.Fatal(err)
	}
	fmt.Println("pulled drives 3 and 8 — reads now reconstruct from 7+2 parity")
	got, now3, err := pair.ReadAt(now, controller.Primary, vol, 1<<20, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	now = now3
	fmt.Printf("data intact through double drive failure: %v\n", bytes.Equal(got, want))

	// Now kill the primary controller. The shelf (SSDs + NVRAM) is dual
	// ported; the secondary recovers the engine from it.
	pair.KillPrimary()
	if _, _, err := pair.ReadAt(now, controller.Primary, vol, 0, 4096); err != nil {
		fmt.Printf("during failover: %v\n", err)
	}
	rep, done, err := pair.Failover(now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("failover: detection %v + scan %v (%d AUs) + replay %d NVRAM records = %v total\n",
		rep.Detection, rep.Recovery.ScanTime, rep.Recovery.AUsScanned,
		rep.Recovery.NVRAMRecords, rep.Total)
	if rep.Total < 30*sim.Second {
		fmt.Println("well inside the 30 s client I/O timeout — applications never noticed")
	}

	// The dead primary's role is now fenced; the survivor serves the array.
	got, _, err = pair.ReadAt(done, pair.Active(), vol, 1<<20, 64<<10)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("data intact through controller failover (still minus two drives): %v\n", bytes.Equal(got, want))
	fmt.Printf("cache warming pre-loaded %d hot cblocks on the new primary\n", rep.Warmed)
}
