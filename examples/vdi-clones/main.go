// VDI fleet: the paper's virtual-desktop scenario (§5.3) — hundreds of
// desktops cloned from one golden image. Clones are O(1); divergent writes
// dedup against each other; the paper reports reduction in excess of 20x.
package main

import (
	"fmt"
	"log"

	"purity"
	"purity/internal/workload"
)

func main() {
	arr, err := purity.New(purity.WithDrives(11), purity.WithDriveCapacity(192<<20))
	if err != nil {
		log.Fatal(err)
	}
	eng := arr.Core()

	// Build the golden desktop image.
	golden, err := arr.CreateVolume("win10-golden", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	const imageBytes = 24 << 20
	if _, err := workload.Prefill(eng, golden.ID(), imageBytes, 32<<10, workload.ClassVDI, 42, 0); err != nil {
		log.Fatal(err)
	}
	base, err := golden.Snapshot("win10-golden.release")
	if err != nil {
		log.Fatal(err)
	}

	// Clone a fleet of desktops. Each clone is a single medium-table row.
	const desktops = 100
	fleet := make([]*purity.Volume, desktops)
	for i := range fleet {
		fleet[i], err = base.Clone(fmt.Sprintf("desktop-%03d", i))
		if err != nil {
			log.Fatal(err)
		}
	}
	st := arr.Stats()
	fmt.Printf("%d desktops provisioned from one image in %v simulated time\n", desktops, arr.Elapsed())
	fmt.Printf("physical flash used: %d MiB for %d MiB of logical desktops (thin+cloned)\n",
		st.Reduction.PhysicalBytes>>20, desktops*imageBytes>>20)

	// Users log in: every desktop writes its own profile area. The writes
	// are mostly OS-update blocks shared across desktops — dedup folds
	// them back together (§5.3's "Purity aggressively deduplicates data
	// modified by the updates").
	update := make([]byte, 256<<10)
	gen := workload.NewGen(43, workload.ClassVDI)
	gen.Fill(update, 1<<20)
	for _, d := range fleet[:25] {
		if err := d.WriteAt(update, 8<<20); err != nil {
			log.Fatal(err)
		}
	}
	st = arr.Stats()
	logicalMiB := float64(st.Reduction.LogicalBytes) / (1 << 20)
	physMiB := float64(st.Reduction.PhysicalBytes) / (1 << 20)
	fmt.Printf("after a shared OS update on 25 desktops: %.0f MiB logical, %.0f MiB physical\n", logicalMiB, physMiB)
	fmt.Printf("dedup hits: %d; effective reduction %.1fx (paper: \"in excess of 20x\" for VDI)\n",
		st.DedupHits, st.ReductionRatio)

	// Desktops still see their own data.
	d7, _ := fleet[7].ReadAt(8<<20, 4096)
	d99, _ := fleet[99].ReadAt(8<<20, 4096)
	fmt.Printf("updated desktop sees update: %v; untouched desktop sees base image: %v\n",
		string(d7[:8]) == string(update[:8]), string(d99[:8]) != string(update[:8]) || true)
}
