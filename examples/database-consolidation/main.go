// Database consolidation: the paper's most common deployment (§5.2) — many
// independent database instances on one array. Each "database" gets a
// volume; pages compress; nightly snapshots are free; dropping a retired
// instance reclaims space through elision and GC.
package main

import (
	"fmt"
	"log"

	"purity"
	"purity/internal/core"
	"purity/internal/workload"
)

func main() {
	arr, err := purity.New(purity.WithDrives(11), purity.WithDriveCapacity(192<<20))
	if err != nil {
		log.Fatal(err)
	}
	eng := arr.Core()

	// Provision a dozen database instances and load each with structured
	// pages (the workload generator mimics row-organized table data).
	const instances = 12
	const dbBytes = 12 << 20
	vols := make([]*purity.Volume, instances)
	for i := range vols {
		v, err := arr.CreateVolume(fmt.Sprintf("pgsql-%02d", i), 64<<20)
		if err != nil {
			log.Fatal(err)
		}
		vols[i] = v
		if _, err := workload.Prefill(eng, v.ID(), dbBytes, 32<<10, workload.ClassDatabase, uint64(i+1), arr.Elapsed()); err != nil {
			log.Fatal(err)
		}
	}
	st := arr.Stats()
	fmt.Printf("%d databases loaded: %d MiB logical -> %d MiB flash (%.1fx reduction)\n",
		instances, st.Reduction.LogicalBytes>>20, st.Reduction.PhysicalBytes>>20, st.ReductionRatio)

	// Nightly snapshots: O(1) per instance, no data copied.
	for i, v := range vols {
		if _, err := v.Snapshot(fmt.Sprintf("pgsql-%02d.nightly", i)); err != nil {
			log.Fatal(err)
		}
	}
	fmt.Printf("snapshots of all %d instances taken in %v simulated time total\n", instances, arr.Elapsed())

	// Retire two instances: elision deletes their address maps with one
	// predicate each; GC returns the segments.
	if err := vols[0].Delete(); err != nil {
		log.Fatal(err)
	}
	if err := vols[1].Delete(); err != nil {
		log.Fatal(err)
	}
	if err := arr.Flush(); err != nil {
		log.Fatal(err)
	}
	before := arr.Stats().FreeAUs
	rep, err := arr.GC()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("after deleting 2 instances: GC reclaimed %d segments (%d -> %d free AUs), elided %d mediums\n",
		rep.SegmentsReclaimed, before, arr.Stats().FreeAUs, rep.MediumsElided)

	// The survivors are untouched.
	v5 := vols[5]
	probe, err := v5.ReadAt(0, 32<<10)
	if err != nil {
		log.Fatal(err)
	}
	gen := workload.NewGen(6, workload.ClassDatabase)
	gen.Instance = uint64(v5.ID())
	want := make([]byte, 32<<10)
	gen.Fill(want, 0)
	fmt.Printf("surviving instance intact: %v\n", string(probe[:16]) == string(want[:16]))

	fmt.Printf("read latency:  %s\n", arr.Stats().ReadLatency.Summary())
	fmt.Printf("write latency: %s\n", arr.Stats().WriteLatency.Summary())
	_ = core.VolumeID(0)
}
