// Replication: asynchronous off-site replication (§1, §3) — snapshot
// anchored, incremental, metadata-diffed. Only the extents written since
// the previous round cross the link.
package main

import (
	"fmt"
	"log"

	"purity/internal/core"
	"purity/internal/replication"
	"purity/internal/sim"
	"purity/internal/workload"
)

func main() {
	cfg := core.DefaultConfig()
	cfg.Shelf.Drives = 11
	cfg.Shelf.DriveConfig.Capacity = 128 << 20
	src, err := core.Format(cfg)
	if err != nil {
		log.Fatal(err)
	}
	dst, err := core.Format(cfg) // the off-site array
	if err != nil {
		log.Fatal(err)
	}

	vol, now, err := src.CreateVolume(0, "orders-db", 64<<20)
	if err != nil {
		log.Fatal(err)
	}
	const dbBytes = 24 << 20
	now, err = workload.Prefill(src, vol, dbBytes, 32<<10, workload.ClassDatabase, 11, now)
	if err != nil {
		log.Fatal(err)
	}

	pair, now, err := replication.NewPair(now, src, dst, vol, replication.DefaultLink())
	if err != nil {
		log.Fatal(err)
	}

	// Round 1: the baseline copy.
	rep, now, err := pair.Sync(now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 1 (baseline): %d extents, %d MiB shipped in %v link time\n",
		rep.Extents, rep.ShippedBytes>>20, rep.LinkTime)

	// The application keeps writing a small hot region...
	hot := make([]byte, 512<<10)
	workload.NewGen(12, workload.ClassDatabase).Fill(hot, 0)
	if now, err = src.WriteAt(now, vol, 4<<20, hot); err != nil {
		log.Fatal(err)
	}

	// Round 2: only the delta crosses the WAN.
	rep, now, err = pair.Sync(now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 2 (incremental): %d extents, %d KiB shipped (delta was %d KiB) in %v\n",
		rep.Extents, rep.ShippedBytes>>10, len(hot)>>10, rep.LinkTime)

	// Round 3 with no changes ships nothing.
	rep, now, err = pair.Sync(now)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("round 3 (idle): %d bytes shipped\n", rep.ShippedBytes)

	// Byte-level verification of the replica.
	if now, err = pair.Verify(now); err != nil {
		log.Fatal(err)
	}
	fmt.Println("replica verified byte-for-byte against the source snapshot")
	_ = sim.Time(now)
}
