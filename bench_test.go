package purity

// One testing.B benchmark per table and figure of the paper's evaluation,
// exercising the code path that regenerates it. The full row/series output
// comes from `go run ./cmd/purity-bench -experiment <id>`; these benches
// measure the underlying operations and keep them honest in CI
// (`go test -bench=. -benchmem`).

import (
	"fmt"
	"testing"

	"purity/internal/baseline"
	"purity/internal/cblock"
	"purity/internal/core"
	"purity/internal/elide"
	"purity/internal/pyramid"
	"purity/internal/sim"
	"purity/internal/tuple"
	"purity/internal/workload"
)

// benchArray builds the standard 11-drive experiment array.
func benchArray(b *testing.B, mutate ...func(*core.Config)) *core.Array {
	b.Helper()
	cfg := core.DefaultConfig()
	cfg.Shelf.Drives = 11
	cfg.Shelf.DriveConfig.Capacity = 128 << 20
	for _, m := range mutate {
		m(&cfg)
	}
	a, err := core.Format(cfg)
	if err != nil {
		b.Fatal(err)
	}
	return a
}

// prefilled returns an array with one volume filled with class data.
func prefilled(b *testing.B, class workload.DataClass, volBytes int64) (*core.Array, core.VolumeID, sim.Time) {
	b.Helper()
	a := benchArray(b)
	vol, _, err := a.CreateVolume(0, "bench", volBytes)
	if err != nil {
		b.Fatal(err)
	}
	now, err := workload.Prefill(a, vol, volBytes, 32<<10, class, 1, 0)
	if err != nil {
		b.Fatal(err)
	}
	return a, vol, now
}

// --- Table 1 -------------------------------------------------------------

func BenchmarkTable1PurityMixed(b *testing.B) {
	a, vol, now := prefilled(b, workload.ClassDatabase, 24<<20)
	mix := workload.Mix{ReadFraction: 0.7, IOSize: 32 << 10, Class: workload.ClassDatabase, Seed: 2}
	b.SetBytes(32 << 10)
	b.ResetTimer()
	res, err := workload.RunClosedLoop(a, vol, 24<<20, mix, 64, b.N, now)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.IOPS, "sim-iops")
	b.ReportMetric(res.ReadLat.Percentile(50).Micros(), "sim-p50-µs")
}

func BenchmarkTable1DiskArrayMixed(b *testing.B) {
	disks := baseline.NewDiskArray(baseline.DefaultDiskArrayConfig(360))
	mix := workload.Mix{ReadFraction: 0.7, IOSize: 32 << 10, Class: workload.ClassDatabase, Seed: 2}
	b.SetBytes(32 << 10)
	b.ResetTimer()
	res, err := workload.RunClosedLoop(disks, 1, 24<<20, mix, 400, b.N, 0)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.IOPS, "sim-iops")
}

// --- Table 2 / E9 ---------------------------------------------------------

func BenchmarkTable2ZipfKV(b *testing.B) {
	a, vol, now := prefilled(b, workload.ClassDatabase, 24<<20)
	mix := workload.Mix{ReadFraction: 0.95, IOSize: 32 << 10, ZipfSkew: 0.99, Class: workload.ClassDatabase, Seed: 3}
	b.ResetTimer()
	res, err := workload.RunClosedLoop(a, vol, 24<<20, mix, 64, b.N, now)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.IOPS/baseline.YCSBPerNodeOps, "nodes-replaced")
}

// --- Figure 5 -------------------------------------------------------------

func benchRecovery(b *testing.B, fullScan bool) {
	a, _, now := prefilled(b, workload.ClassDatabase, 48<<20)
	if _, err := a.FlushAll(now); err != nil {
		b.Fatal(err)
	}
	cfg := a.Config()
	sh := a.Shelf()
	b.ResetTimer()
	var scan sim.Time
	for i := 0; i < b.N; i++ {
		_, rs, err := core.OpenAt(cfg, sh, 0, fullScan)
		if err != nil {
			b.Fatal(err)
		}
		scan = rs.ScanTime
	}
	b.ReportMetric(scan.Micros(), "sim-scan-µs")
}

func BenchmarkRecoveryScanFrontier(b *testing.B) { benchRecovery(b, false) }
func BenchmarkRecoveryScanFull(b *testing.B)     { benchRecovery(b, true) }

// --- Figure 6 -------------------------------------------------------------

func BenchmarkMediumChainResolve(b *testing.B) {
	a, vol, now := prefilled(b, workload.ClassDatabase, 8<<20)
	// Deepen the chain with snapshots.
	for i := 0; i < 3; i++ {
		var err error
		if _, now, err = a.Snapshot(now, vol, fmt.Sprintf("s%d", i)); err != nil {
			b.Fatal(err)
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%200) * (32 << 10)
		if _, _, err := a.ReadAt(now, vol, off, 32<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Figure 7 -------------------------------------------------------------

func BenchmarkFigure7CostModel(b *testing.B) {
	mediums := baseline.Figure7Mediums()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		baseline.RelativeCost(mediums, float64(i%86400+1))
	}
}

// --- E1: tail latency -----------------------------------------------------

func BenchmarkTailLatencyMixed(b *testing.B) {
	a, vol, now := prefilled(b, workload.ClassDatabase, 24<<20)
	mix := workload.Mix{ReadFraction: 0.7, IOSize: 32 << 10, Class: workload.ClassDatabase, Seed: 4}
	b.ResetTimer()
	res, err := workload.RunClosedLoop(a, vol, 24<<20, mix, 64, b.N, now)
	if err != nil {
		b.Fatal(err)
	}
	b.ReportMetric(res.ReadLat.Percentile(99.9).Micros(), "sim-p999-µs")
}

// --- E2: write-heavy reconstruction ---------------------------------------

func BenchmarkWriteHeavyReads(b *testing.B) {
	a, vol, now := prefilled(b, workload.ClassDatabase, 24<<20)
	mix := workload.Mix{ReadFraction: 0.3, IOSize: 32 << 10, Class: workload.ClassDatabase, Seed: 5}
	b.ResetTimer()
	if _, err := workload.RunClosedLoop(a, vol, 24<<20, mix, 64, b.N, now); err != nil {
		b.Fatal(err)
	}
	st := a.Stats()
	total := st.SegRead.DirectShardReads + st.SegRead.ReconstructedReads
	if total > 0 {
		b.ReportMetric(float64(st.SegRead.ReconstructedReads)/float64(total)*100, "recon-%")
	}
}

// --- E3: data reduction -----------------------------------------------------

func BenchmarkReductionVMImages(b *testing.B) {
	a := benchArray(b)
	vol, _, err := a.CreateVolume(0, "vm", 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGen(7, workload.ClassVMImage)
	buf := make([]byte, 32<<10)
	b.SetBytes(32 << 10)
	b.ResetTimer()
	var now sim.Time
	for i := 0; i < b.N; i++ {
		off := (int64(i) * (32 << 10)) % (1 << 30)
		gen.Fill(buf, uint64(off/cblock.SectorSize))
		d, err := a.WriteAt(now, vol, off, buf)
		if err != nil {
			b.Fatal(err)
		}
		now = d
	}
	b.ReportMetric(a.Stats().ReductionRatio, "reduction-x")
}

// --- E4: anchor dedup -------------------------------------------------------

func BenchmarkAnchorDedupWrite(b *testing.B) {
	a, _, now := prefilled(b, workload.ClassVDI, 16<<20)
	vol, _, err := a.CreateVolume(now, "dup", 1<<30)
	if err != nil {
		b.Fatal(err)
	}
	gen := workload.NewGen(1, workload.ClassVDI) // same pool as the prefill
	buf := make([]byte, 32<<10)
	b.SetBytes(32 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := (int64(i) * (32 << 10)) % (1 << 28)
		gen.Fill(buf, uint64(off/cblock.SectorSize))
		d, err := a.WriteAt(now, vol, off, buf)
		if err != nil {
			b.Fatal(err)
		}
		now = d
	}
	st := a.Stats()
	if st.DedupHits+st.DedupMisses > 0 {
		b.ReportMetric(float64(st.DedupHits)/float64(st.DedupHits+st.DedupMisses)*100, "dedup-hit-%")
	}
}

// --- E5: elision vs tombstones ----------------------------------------------

func benchDeletePyramid(b *testing.B, useElide bool) {
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		et := elide.NewTable()
		var tbl *elide.Table
		if useElide {
			tbl = et
		}
		p, err := pyramid.New(pyramid.Config{ID: 1, Name: "e5", Schema: tuple.Schema{Cols: 2, KeyCols: 1}}, pyramid.NewMemStore(), tbl)
		if err != nil {
			b.Fatal(err)
		}
		const n = 10000
		facts := make([]tuple.Fact, n)
		for j := range facts {
			facts[j] = tuple.Fact{Seq: tuple.Seq(j + 1), Cols: []uint64{uint64(j), 1}}
		}
		p.Insert(facts)
		if _, err := p.Flush(0, n); err != nil {
			b.Fatal(err)
		}
		b.StartTimer()
		// The measured region is the whole deletion INCLUDING the merge
		// that reclaims the space — that is the comparison the paper
		// makes (one elide record + immediate drop at merge, vs n
		// tombstones that must be written, flushed and merged).
		if useElide {
			et.Add(elide.Predicate{Col: 0, Lo: 0, Hi: n, MaxSeq: n})
			p.Insert([]tuple.Fact{{Seq: n + 1, Cols: []uint64{n + 1, 0}}})
			if _, err := p.Flush(0, n+1); err != nil {
				b.Fatal(err)
			}
		} else {
			dead := make([]tuple.Fact, n)
			for j := range dead {
				dead[j] = tuple.Fact{Seq: tuple.Seq(n + j + 1), Cols: []uint64{uint64(j), 0}}
			}
			p.Insert(dead)
			if _, err := p.Flush(0, 2*n); err != nil {
				b.Fatal(err)
			}
		}
		if _, err := p.Maintain(0, 1); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkDeleteByElision(b *testing.B)   { benchDeletePyramid(b, true) }
func BenchmarkDeleteByTombstone(b *testing.B) { benchDeletePyramid(b, false) }

// --- E6: degraded reads -------------------------------------------------------

func BenchmarkDegradedRead(b *testing.B) {
	a, vol, now := prefilled(b, workload.ClassDatabase, 16<<20)
	if _, err := a.FlushAll(now); err != nil {
		b.Fatal(err)
	}
	a.Shelf().PullDrive(1)
	a.Shelf().PullDrive(5)
	b.SetBytes(32 << 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		off := int64(i%400) * (32 << 10)
		if _, _, err := a.ReadAt(now, vol, off, 32<<10); err != nil {
			b.Fatal(err)
		}
	}
}

// --- E7: failover ---------------------------------------------------------------

func BenchmarkFailoverRecovery(b *testing.B) {
	a, _, now := prefilled(b, workload.ClassDatabase, 16<<20)
	if _, err := a.FlushAll(now); err != nil {
		b.Fatal(err)
	}
	cfg := a.Config()
	sh := a.Shelf()
	b.ResetTimer()
	var total sim.Time
	for i := 0; i < b.N; i++ {
		_, rs, err := core.OpenAt(cfg, sh, 0, false)
		if err != nil {
			b.Fatal(err)
		}
		total = rs.TotalTime
	}
	b.ReportMetric(total.Millis(), "sim-recovery-ms")
}

// --- E8: GC ---------------------------------------------------------------------

func BenchmarkGCCycle(b *testing.B) {
	a, vol, now := prefilled(b, workload.ClassDatabase, 16<<20)
	buf := make([]byte, 32<<10)
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		// Make garbage: overwrite part of the volume.
		for off := int64(0); off < 2<<20; off += 32 << 10 {
			sim.NewRand(uint64(i)*131 + uint64(off)).Bytes(buf)
			d, err := a.WriteAt(now, vol, off, buf)
			if err != nil {
				b.Fatal(err)
			}
			now = d
		}
		b.StartTimer()
		_, d, err := a.RunGC(now)
		if err != nil {
			b.Fatal(err)
		}
		now = d
	}
}
